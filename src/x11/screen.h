// ScreenResources: display-content interposition (§IV-A "Display contents").
//
// Four request families can exfiltrate pixels:
//  * GetImage / XShmGetImage — designed for capture; always mediated when
//    the source is the root window or another client's window.
//  * CopyArea / CopyPlane — general-purpose copies; "regularly used by X
//    clients for various other purposes", so Overhaul first inspects the
//    owners of the source and destination buffers: same-owner copies pass
//    untouched, cross-client copies are mediated like captures.
#pragma once

#include <cstdint>
#include <vector>

#include "display/types.h"
#include "kern/ipc/shared_memory.h"
#include "util/status.h"
#include "x11/window.h"

namespace overhaul::x11 {

class XServer;

// Capture results are shared with the Wayland backend (src/display/types.h)
// so the differential tests can compare images across backends directly.
using Image = display::Image;

class ScreenResources {
 public:
  explicit ScreenResources(XServer& server) : server_(server) {}

  // Core-protocol GetImage on any window. kRootWindow returns the composited
  // screen: every mapped window rendered in stacking order over the root
  // background — what a real screenshot contains (and what the §V-D malware
  // was after: "screenshots of bank account information").
  util::Result<Image> get_image(ClientId client, WindowId window);

  // The composited full screen (no mediation — internal to the server).
  [[nodiscard]] Image composite_screen() const;

  // MIT-SHM XShmGetImage: same mediation, but the pixels land in a shared
  // memory segment the client supplied — which routes the transfer through
  // the kernel's page-fault interposition as well. Returns bytes written.
  util::Result<std::size_t> xshm_get_image(ClientId client, WindowId window,
                                           kern::ShmMapping& dst);

  // CopyArea: copy pixels from src to dst. Same-owner copies are untouched;
  // cross-client (or root-sourced) copies are mediated.
  util::Status copy_area(ClientId client, WindowId src, WindowId dst);

  // CopyPlane: single-bitplane variant; identical mediation rules.
  util::Status copy_plane(ClientId client, WindowId src, WindowId dst,
                          unsigned plane);

  struct Stats {
    std::uint64_t captures_granted = 0;
    std::uint64_t captures_denied = 0;
    std::uint64_t same_owner_copies = 0;  // CopyArea fast path, no query
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  // Shared mediation: does `client` get pixel access to `window`?
  util::Status authorize_capture(ClientId client, WindowId window);

  XServer& server_;
  Stats stats_;
};

}  // namespace overhaul::x11
