#include "x11/prompt.h"

#include "x11/server.h"

namespace overhaul::x11 {

using util::Decision;

Decision PromptManager::ask(int pid, const std::string& comm, util::Op op) {
  Prompt prompt;
  prompt.id = next_id_++;
  prompt.pid = pid;
  prompt.comm = comm;
  prompt.op = op;
  prompt.text = "Allow " + comm + " to access " +
                std::string(util::op_name(op)) + "?";
  prompt.secret = server_.alerts().shared_secret_for_verification();
  // Buttons live in the reserved overlay strip at the top-right of the
  // screen — coordinates no client window can claim ahead of the prompt
  // dispatcher.
  const int w = server_.config().screen_width;
  prompt.allow_button = Rect{w - 220, 4, 100, 32};
  prompt.deny_button = Rect{w - 110, 4, 100, 32};

  ++stats_.prompts_shown;
  pending_ = prompt;

  // Consult the user synchronously (the real system blocks the requesting
  // syscall while the prompt is up).
  if (agent_) agent_(*pending_);

  Prompt resolved = *pending_;
  pending_.reset();
  if (!resolved.decided) {
    ++stats_.unanswered;
    resolved.decision = Decision::kDeny;  // fail closed
  } else if (resolved.decision == Decision::kGrant) {
    ++stats_.allowed;
  } else {
    ++stats_.denied;
  }
  history_.push_back(resolved);
  return resolved.decision;
}

bool PromptManager::handle_click(int x, int y, bool hardware_provenance) {
  if (!pending_.has_value()) return false;
  const bool on_allow = pending_->allow_button.contains(x, y);
  const bool on_deny = pending_->deny_button.contains(x, y);
  if (!on_allow && !on_deny) return false;

  if (!hardware_provenance) {
    // S2 for prompts: synthetic clicks cannot answer; swallow the event so
    // it cannot reach a window placed underneath either.
    ++stats_.forged_clicks_ignored;
    return true;
  }
  pending_->decided = true;
  pending_->decision = on_allow ? Decision::kGrant : Decision::kDeny;
  return true;
}

}  // namespace overhaul::x11
