// PromptManager: the explicit-prompt security model built on Overhaul's
// trusted paths (§IV-A "Trusted output").
//
// "we have implemented and verified that OVERHAUL's security primitives can
// be used to support such a security model in a trivial manner, where the
// trusted output path would be used for displaying an unforgeable prompt,
// and the trusted input path to verify user interaction with it." The paper
// does not adopt this mode (prompt fatigue, §VI), but ships it; so do we.
//
// A prompt is rendered on the overlay surface (above all windows, stamped
// with the visual shared secret). Its Allow/Deny buttons live in a reserved
// strip of the screen that the input dispatcher checks *before* window
// hit-testing, and only hardware-provenance clicks are accepted — synthetic
// clicks (SendEvent/XTest) on the buttons are counted as forgery attempts
// and ignored.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/audit_log.h"
#include "window.h"

namespace overhaul::x11 {

class XServer;

struct Prompt {
  std::uint64_t id = 0;
  int pid = -1;
  std::string comm;
  util::Op op = util::Op::kDeviceOther;
  std::string text;
  std::string secret;      // the visual shared secret (unforgeable)
  Rect allow_button;
  Rect deny_button;
  bool decided = false;
  util::Decision decision = util::Decision::kDeny;
};

class PromptManager {
 public:
  explicit PromptManager(XServer& server) : server_(server) {}

  // The simulated human: consulted synchronously while a prompt is pending.
  // The agent acts by injecting *hardware* clicks (through the input
  // driver), exactly like a real user would; it cannot flip the decision
  // directly.
  using UserAgent = std::function<void(const Prompt&)>;
  void set_user_agent(UserAgent agent) { agent_ = std::move(agent); }

  // Raise a prompt for `pid`/`op` and block (synchronously) for the user's
  // decision. An unanswered prompt denies — fail closed.
  util::Decision ask(int pid, const std::string& comm, util::Op op);

  // Input-dispatch hook: if (x, y) hits a pending prompt's buttons, consume
  // the click. Returns true when consumed. Only kHardware provenance can
  // decide; synthetic hits are recorded and swallowed (they must not fall
  // through to windows beneath the overlay either).
  bool handle_click(int x, int y, bool hardware_provenance);

  [[nodiscard]] const std::optional<Prompt>& pending() const noexcept {
    return pending_;
  }
  [[nodiscard]] const std::vector<Prompt>& history() const noexcept {
    return history_;
  }

  struct Stats {
    std::uint64_t prompts_shown = 0;
    std::uint64_t allowed = 0;
    std::uint64_t denied = 0;
    std::uint64_t unanswered = 0;
    std::uint64_t forged_clicks_ignored = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  XServer& server_;
  UserAgent agent_;
  std::optional<Prompt> pending_;
  std::vector<Prompt> history_;
  std::uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace overhaul::x11
