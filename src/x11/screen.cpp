#include "x11/screen.h"

#include <algorithm>
#include <cstring>

#include "x11/server.h"

namespace overhaul::x11 {

using util::Code;
using util::Decision;
using util::Op;
using util::Result;
using util::Status;

Status ScreenResources::authorize_capture(ClientId client, WindowId window_id) {
  Window* win = server_.window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "no such window");

  // Capturing your own window is always fine; the root window and foreign
  // windows require the input-correlation check.
  if (window_id != kRootWindow && win->owner() == client) return Status::ok();

  if (!server_.overhaul_enabled()) return Status::ok();  // unmodified server

  const Decision d = server_.ask_monitor(
      client, Op::kScreenCapture,
      window_id == kRootWindow ? "root" : "window " + std::to_string(window_id));
  if (d == Decision::kDeny) {
    ++stats_.captures_denied;
    return Status(Code::kBadAccess, "screen capture not preceded by input");
  }
  ++stats_.captures_granted;
  return Status::ok();
}

Image ScreenResources::composite_screen() const {
  const Window* root =
      const_cast<XServer&>(server_).window(kRootWindow);
  Image img;
  img.width = root->rect().width;
  img.height = root->rect().height;
  img.pixels = root->pixels();  // background first
  // Paint mapped windows bottom → top, clipped to the screen.
  for (WindowId wid : server_.stacking_order()) {
    if (wid == kRootWindow) continue;
    const Window* win = const_cast<XServer&>(server_).window(wid);
    if (win == nullptr || !win->mapped() || win->transparent()) continue;
    const Rect& r = win->rect();
    for (int y = std::max(0, r.y);
         y < std::min(img.height, r.y + r.height); ++y) {
      const int x0 = std::max(0, r.x);
      const int x1 = std::min(img.width, r.x + r.width);
      if (x1 <= x0) continue;
      const auto* src =
          win->pixels().data() +
          static_cast<std::size_t>(y - r.y) * static_cast<std::size_t>(r.width) +
          static_cast<std::size_t>(x0 - r.x);
      auto* dst = img.pixels.data() +
                  static_cast<std::size_t>(y) * static_cast<std::size_t>(img.width) +
                  static_cast<std::size_t>(x0);
      std::memcpy(dst, src, static_cast<std::size_t>(x1 - x0) * 4);
    }
  }
  return img;
}

Result<Image> ScreenResources::get_image(ClientId client, WindowId window_id) {
  obs::Tracer::Span span;
  if (auto& tracer = server_.obs().tracer; tracer.enabled()) {
    XClient* c = server_.client(client);
    span = tracer.span("Screen::get_image", "x11",
                       c != nullptr ? c->pid() : 0);
    span.arg("window", std::to_string(window_id));
  }
  if (auto s = authorize_capture(client, window_id); !s.is_ok()) return s;

  if (window_id == kRootWindow) return composite_screen();

  Window* win = server_.window(window_id);
  Image img;
  img.width = win->rect().width;
  img.height = win->rect().height;
  img.pixels = win->pixels();  // real copy — the baseline cost of GetImage
  return img;
}

Result<std::size_t> ScreenResources::xshm_get_image(ClientId client,
                                                    WindowId window_id,
                                                    kern::ShmMapping& dst) {
  obs::Tracer::Span span;
  if (auto& tracer = server_.obs().tracer; tracer.enabled()) {
    XClient* c = server_.client(client);
    span = tracer.span("Screen::xshm_get_image", "x11",
                       c != nullptr ? c->pid() : 0);
    span.arg("window", std::to_string(window_id));
  }
  if (auto s = authorize_capture(client, window_id); !s.is_ok()) return s;

  std::vector<std::uint32_t> composed;
  const std::vector<std::uint32_t>* pixels_ptr = nullptr;
  if (window_id == kRootWindow) {
    composed = composite_screen().pixels;
    pixels_ptr = &composed;
  } else {
    pixels_ptr = &server_.window(window_id)->pixels();
  }
  const auto& pixels = *pixels_ptr;
  const std::size_t bytes = pixels.size() * sizeof(std::uint32_t);
  if (bytes > dst.segment()->size())
    return Status(Code::kInvalidArgument, "shm segment too small for image");

  // Write through the X server's own task so the kernel page-fault
  // interposition sees the transfer like any other shared-memory IPC.
  kern::TaskStruct* server_task =
      server_.kernel().processes().lookup_live(server_.pid());
  if (server_task == nullptr)
    return Status(Code::kNotFound, "X server task missing");
  if (auto s = dst.write(*server_task, 0, pixels.data(), bytes); !s.is_ok())
    return s;
  return bytes;
}

Status ScreenResources::copy_area(ClientId client, WindowId src_id,
                                  WindowId dst_id) {
  Window* src = server_.window(src_id);
  Window* dst = server_.window(dst_id);
  if (src == nullptr || dst == nullptr)
    return Status(Code::kBadWindow, "copy_area: bad window");
  if (dst->owner() != client)
    return Status(Code::kBadAccess, "copy_area: destination not owned");

  // §IV-A: "If the owners of both buffers are identical ... the request is
  // allowed to proceed" — no permission query for a self-copy.
  if (src_id != kRootWindow && src->owner() == dst->owner()) {
    ++stats_.same_owner_copies;
  } else if (auto s = authorize_capture(client, src_id); !s.is_ok()) {
    return s;
  }

  const std::size_t n = std::min(src->pixels().size(), dst->pixels().size());
  std::memcpy(dst->pixels().data(), src->pixels().data(),
              n * sizeof(std::uint32_t));
  return Status::ok();
}

Status ScreenResources::copy_plane(ClientId client, WindowId src_id,
                                   WindowId dst_id, unsigned plane) {
  if (plane >= 32)
    return Status(Code::kInvalidArgument, "copy_plane: bad plane");
  Window* src = server_.window(src_id);
  Window* dst = server_.window(dst_id);
  if (src == nullptr || dst == nullptr)
    return Status(Code::kBadWindow, "copy_plane: bad window");
  if (dst->owner() != client)
    return Status(Code::kBadAccess, "copy_plane: destination not owned");

  if (src_id != kRootWindow && src->owner() == dst->owner()) {
    ++stats_.same_owner_copies;
  } else if (auto s = authorize_capture(client, src_id); !s.is_ok()) {
    return s;
  }

  const std::uint32_t mask = 1u << plane;
  const std::size_t n = std::min(src->pixels().size(), dst->pixels().size());
  for (std::size_t i = 0; i < n; ++i) {
    dst->pixels()[i] =
        (dst->pixels()[i] & ~mask) | (src->pixels()[i] & mask);
  }
  return Status::ok();
}

}  // namespace overhaul::x11
