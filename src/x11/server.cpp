#include "x11/server.h"

namespace overhaul::x11 {

using kern::Pid;
using util::Code;
using util::Decision;
using util::Result;
using util::Status;

XServer::XServer(kern::Kernel& kernel, XServerConfig config)
    : kernel_(kernel),
      config_(config),
      alerts_(kernel.clock()),
      selections_(*this),
      screen_(*this) {
  // The X server runs as a root-owned userspace process spawned from init.
  auto pid = kernel_.sys_spawn(1, kXorgExe, "Xorg");
  pid_ = pid.is_ok() ? pid.value() : kern::kNoPid;

  // Root window covers the screen.
  auto root = std::make_unique<Window>(
      kRootWindow, kServerClient,
      Rect{0, 0, config_.screen_width, config_.screen_height});
  root->map(kernel_.clock().now());
  windows_.emplace(kRootWindow, std::move(root));

  if (config_.overhaul_enabled) {
    // §IV-A: "the X server was modified to connect to a secure communication
    // channel upon initialization". The kernel authenticates us by
    // introspecting our exe path.
    auto channel = kernel_.netlink().connect(pid_);
    if (channel.is_ok()) {
      channel_ = std::move(channel).value();
      channel_->set_alert_handler([this](const kern::AlertRequest& alert) {
        alerts_.show(alert.pid, alert.comm, alert.op, alert.decision);
      });
    }
  }

  auto& metrics = kernel_.obs().metrics;
  c_hw_events_ = metrics.counter("x11.input.hardware_events");
  c_synthetic_events_ = metrics.counter("x11.input.synthetic_events");
  c_notifications_ = metrics.counter("x11.input.notifications");
  c_clickjack_ = metrics.counter("x11.input.clickjack_suppressed");
  c_send_event_drops_ = metrics.counter("x11.send_event.drops");
}

// --- client connections -------------------------------------------------------

Result<ClientId> XServer::connect_client(Pid pid) {
  if (kernel_.processes().lookup_live(pid) == nullptr)
    return Status(Code::kNotFound, "connect: no such process");
  const ClientId id = next_client_++;
  clients_.emplace(id, std::make_unique<XClient>(id, pid));
  return id;
}

Status XServer::disconnect_client(ClientId id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) return Status(Code::kNotFound, "no such client");
  it->second->disconnect();
  // Unmap and destroy the client's windows.
  std::vector<WindowId> owned;
  for (auto& [wid, win] : windows_) {
    if (win->owner() == id) owned.push_back(wid);
  }
  for (WindowId wid : owned) {
    std::erase(stacking_, wid);
    windows_.erase(wid);
    if (focus_ == wid) focus_ = kNoWindow;
    acg_.unregister_window(wid);
    if (keyboard_grab_ == wid) keyboard_grab_ = kNoWindow;
    if (pointer_grab_ == wid) pointer_grab_ = kNoWindow;
  }
  std::erase_if(event_masks_,
                [&](const auto& entry) { return entry.first.first == id; });
  selections_.on_client_disconnected(id);
  clients_.erase(it);
  return Status::ok();
}

XClient* XServer::client(ClientId id) {
  const auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : it->second.get();
}

XClient* XServer::client_of_pid(Pid pid) {
  for (auto& [id, c] : clients_) {
    (void)id;
    if (c->pid() == pid) return c.get();
  }
  return nullptr;
}

// --- window management ----------------------------------------------------------

Result<WindowId> XServer::create_window(ClientId client_id, Rect rect) {
  if (client(client_id) == nullptr)
    return Status(Code::kNotFound, "create_window: no such client");
  if (rect.width <= 0 || rect.height <= 0)
    return Status(Code::kInvalidArgument, "create_window: empty geometry");
  const WindowId id = next_window_++;
  windows_.emplace(id, std::make_unique<Window>(id, client_id, rect));
  return id;
}

Status XServer::map_window(ClientId client_id, WindowId window_id) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "map: no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "map: not the owner");
  win->map(kernel_.clock().now());
  std::erase(stacking_, window_id);
  stacking_.push_back(window_id);  // newly mapped windows land on top
  emit_structure_notify(window_id, EventType::kMapNotify);
  return Status::ok();
}

Status XServer::unmap_window(ClientId client_id, WindowId window_id) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "unmap: no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "unmap: not the owner");
  win->unmap();
  std::erase(stacking_, window_id);
  emit_structure_notify(window_id, EventType::kUnmapNotify);
  return Status::ok();
}

Status XServer::raise_window(ClientId client_id, WindowId window_id) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "raise: no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "raise: not the owner");
  if (!win->mapped())
    return Status(Code::kInvalidArgument, "raise: window not mapped");
  std::erase(stacking_, window_id);
  stacking_.push_back(window_id);
  // Note: raising does NOT restart the visibility clock — the window was
  // already visible; only map does.
  return Status::ok();
}

Status XServer::configure_window(ClientId client_id, WindowId window_id,
                                 Rect rect) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "not the owner");
  if (rect.width <= 0 || rect.height <= 0)
    return Status(Code::kInvalidArgument, "empty geometry");
  const sim::Timestamp now = kernel_.clock().now();
  if (rect.width != win->rect().width || rect.height != win->rect().height) {
    win->resize(rect.width, rect.height, now);
  }
  win->move_to(rect.x, rect.y, now);
  emit_structure_notify(window_id, EventType::kConfigureNotify);
  return Status::ok();
}

Status XServer::set_transparent(ClientId client_id, WindowId window_id,
                                bool on) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "not the owner");
  win->set_transparent(on);
  return Status::ok();
}

Window* XServer::window(WindowId id) {
  const auto it = windows_.find(id);
  return it == windows_.end() ? nullptr : it->second.get();
}

Status XServer::select_input(ClientId client_id, WindowId window_id,
                             std::uint32_t mask) {
  if (client(client_id) == nullptr)
    return Status(Code::kNotFound, "select_input: no such client");
  if (window(window_id) == nullptr)
    return Status(Code::kBadWindow, "select_input: no such window");
  if (mask == kNoEventMask) {
    event_masks_.erase({client_id, window_id});
  } else {
    event_masks_[{client_id, window_id}] = mask;
  }
  return Status::ok();
}

std::vector<ClientId> XServer::clients_selecting(WindowId window_id,
                                                 std::uint32_t mask) const {
  std::vector<ClientId> out;
  for (const auto& [key, bits] : event_masks_) {
    if (key.second == window_id && (bits & mask) != 0) out.push_back(key.first);
  }
  return out;
}

void XServer::emit_structure_notify(WindowId window_id, EventType type) {
  for (ClientId cid : clients_selecting(window_id, kStructureNotifyMask)) {
    if (XClient* c = client(cid); c != nullptr) {
      XEvent ev;
      ev.type = type;
      ev.provenance = Provenance::kHardware;  // server-originated
      ev.window = window_id;
      c->enqueue(std::move(ev));
    }
  }
}

Window* XServer::window_at(int x, int y) {
  // Top of stack first.
  for (auto it = stacking_.rbegin(); it != stacking_.rend(); ++it) {
    Window* win = window(*it);
    if (win != nullptr && win->mapped() && win->rect().contains(x, y))
      return win;
  }
  return nullptr;
}

// --- input path ---------------------------------------------------------------------

bool XServer::passes_visibility_check(const Window& win) const {
  // §IV-A: "OVERHAUL only generates interaction notifications if the X
  // client receiving the event has a valid mapped window that has stayed
  // visible above a predefined time threshold." Transparent windows are
  // never *visible*, no matter how long they have been mapped.
  if (!win.mapped() || win.transparent()) return false;
  return win.visible_for(kernel_.clock().now()) >= config_.visibility_threshold;
}

void XServer::deliver_input(XEvent event, Window& win) {
  XClient* owner = client(win.owner());
  if (owner == nullptr) return;

  InputTraceEntry trace;
  trace.time = kernel_.clock().now();
  trace.type = event.type;
  trace.provenance = event.provenance;
  trace.receiver_pid = owner->pid();
  trace.window = win.id();

  if (event.provenance == Provenance::kHardware) {
    ++stats_.hardware_events;
    c_hw_events_->add();
    if (config_.overhaul_enabled && channel_ != nullptr) {
      if (passes_visibility_check(win)) {
        kern::InteractionNotification note;
        note.pid = owner->pid();
        note.ts = kernel_.clock().now();
        if (channel_->send_interaction(note).is_ok()) {
          ++stats_.interaction_notifications;
          c_notifications_->add();
          trace.produced_notification = true;
        }
        // ACG comparison mode: a click inside a registered gadget also
        // produces an op-specific grant notification.
        if (event.type == EventType::kButtonPress) {
          if (const auto op = acg_.gadget_hit(win, event.x, event.y);
              op.has_value()) {
            kern::AcgGrantNotification grant;
            grant.pid = owner->pid();
            grant.op = *op;
            grant.ts = kernel_.clock().now();
            (void)channel_->send_acg_grant(grant);
          }
        }
      } else {
        ++stats_.clickjack_suppressed;
        c_clickjack_->add();
        trace.clickjack_suppressed = true;
      }
    }
  } else {
    ++stats_.synthetic_events;
    c_synthetic_events_->add();
  }

  input_trace_.push_back(trace);
  if (input_trace_.size() > kInputTraceCapacity) input_trace_.pop_front();

  event.window = win.id();
  owner->enqueue(std::move(event));
}

Status XServer::grab_keyboard(ClientId client_id, WindowId window_id) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "grab: no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "grab: not the owner");
  if (keyboard_grab_ != kNoWindow)
    return Status(Code::kBusy, "grab: keyboard already grabbed");
  keyboard_grab_ = window_id;
  return Status::ok();
}

Status XServer::ungrab_keyboard(ClientId client_id) {
  Window* win = window(keyboard_grab_);
  if (win == nullptr || win->owner() != client_id)
    return Status(Code::kBadAccess, "ungrab: not the grabber");
  keyboard_grab_ = kNoWindow;
  return Status::ok();
}

Status XServer::grab_pointer(ClientId client_id, WindowId window_id) {
  Window* win = window(window_id);
  if (win == nullptr) return Status(Code::kBadWindow, "grab: no such window");
  if (win->owner() != client_id)
    return Status(Code::kBadAccess, "grab: not the owner");
  if (pointer_grab_ != kNoWindow)
    return Status(Code::kBusy, "grab: pointer already grabbed");
  pointer_grab_ = window_id;
  return Status::ok();
}

Status XServer::ungrab_pointer(ClientId client_id) {
  Window* win = window(pointer_grab_);
  if (win == nullptr || win->owner() != client_id)
    return Status(Code::kBadAccess, "ungrab: not the grabber");
  pointer_grab_ = kNoWindow;
  return Status::ok();
}

void XServer::hardware_button_press(int x, int y, int button) {
  // The prompt strip sits above every window; clicks there never reach
  // clients. Only this path carries hardware provenance.
  if (prompts_.handle_click(x, y, /*hardware_provenance=*/true)) return;
  // An active pointer grab intercepts the click regardless of position.
  if (pointer_grab_ != kNoWindow) {
    if (Window* grabber = window(pointer_grab_); grabber != nullptr) {
      XEvent ev;
      ev.type = EventType::kButtonPress;
      ev.provenance = Provenance::kHardware;
      ev.button = button;
      ev.x = x;
      ev.y = y;
      deliver_input(std::move(ev), *grabber);
      return;
    }
  }
  Window* win = window_at(x, y);
  if (win == nullptr) return;  // click on bare root: no client target
  focus_ = win->id();
  XEvent ev;
  ev.type = EventType::kButtonPress;
  ev.provenance = Provenance::kHardware;
  ev.button = button;
  ev.x = x;
  ev.y = y;
  deliver_input(std::move(ev), *win);
}

void XServer::hardware_key_press(int keycode) {
  // An active keyboard grab steals keystrokes from the focus window.
  Window* win = keyboard_grab_ != kNoWindow ? window(keyboard_grab_)
                                            : window(focus_);
  if (win == nullptr) return;
  if (keyboard_grab_ == kNoWindow && !win->mapped()) return;
  XEvent ev;
  ev.type = EventType::kKeyPress;
  ev.provenance = Provenance::kHardware;
  ev.keycode = keycode;
  deliver_input(std::move(ev), *win);
}

Status XServer::send_event(ClientId sender, WindowId target, XEvent event) {
  if (client(sender) == nullptr)
    return Status(Code::kNotFound, "send_event: no such client");
  Window* win = window(target);
  if (win == nullptr) return Status(Code::kBadWindow, "send_event: bad window");

  // Wire format: events sent with SendEvent carry the synthetic flag — this
  // is core X11 behaviour, not an Overhaul addition.
  event.provenance = Provenance::kSendEvent;
  event.synthetic_flag = true;

  // Overhaul's clipboard-protocol policing (§IV-A): block SendEvents "that
  // can break the copy & paste protocol".
  if (config_.overhaul_enabled) {
    if (!selections_.send_event_allowed(sender, event)) {
      ++stats_.blocked_send_events;
      c_send_event_drops_->add();
      if (kernel_.obs().tracer.enabled()) {
        XClient* s = client(sender);
        kernel_.obs().tracer.instant(
            "SendEvent::blocked", "x11", s != nullptr ? s->pid() : 0,
            {{"type_code", std::to_string(static_cast<int>(event.type))}});
      }
      return Status(Code::kBadAccess, "send_event: out-of-protocol event");
    }
    if (event.type == EventType::kSelectionNotify)
      selections_.on_selection_notify_sent(sender, event);
  }

  // The event transits the wire: the synthetic flag is carried by the wire
  // format itself (top bit of the event-code byte), so the receiver's view
  // cannot be laundered by the sender.
  const wire::EventRecord record = wire::encode_event(event, atoms_);
  auto decoded = wire::decode_event(record, atoms_);
  if (!decoded.is_ok()) return decoded.status();

  deliver_input(std::move(decoded).value(), *win);
  return Status::ok();
}

Status XServer::xtest_fake_button(ClientId sender, int x, int y) {
  if (client(sender) == nullptr)
    return Status(Code::kNotFound, "xtest: no such client");
  // A fake click aimed at a pending prompt's buttons is a forgery attempt:
  // swallowed and counted, never able to decide the prompt.
  if (prompts_.handle_click(x, y, /*hardware_provenance=*/false))
    return Status::ok();
  Window* win = window_at(x, y);
  if (win == nullptr) return Status::ok();
  focus_ = win->id();
  XEvent ev;
  ev.type = EventType::kButtonPress;
  // No wire flag — but the modified server tags the provenance (§IV-A), so
  // deliver_input will not treat it as an interaction.
  ev.provenance = Provenance::kXTest;
  ev.button = 1;
  ev.x = x;
  ev.y = y;
  deliver_input(std::move(ev), *win);
  return Status::ok();
}

Status XServer::xtest_fake_key(ClientId sender, int keycode) {
  if (client(sender) == nullptr)
    return Status(Code::kNotFound, "xtest: no such client");
  Window* win = window(focus_);
  if (win == nullptr || !win->mapped()) return Status::ok();
  XEvent ev;
  ev.type = EventType::kKeyPress;
  ev.provenance = Provenance::kXTest;
  ev.keycode = keycode;
  deliver_input(std::move(ev), *win);
  return Status::ok();
}

// --- Overhaul liaison ------------------------------------------------------------------

Decision XServer::ask_monitor(ClientId client_id, util::Op op,
                              std::string_view detail) {
  if (!config_.overhaul_enabled) return Decision::kGrant;  // unmodified server
  XClient* c = client(client_id);
  if (c == nullptr || channel_ == nullptr) return Decision::kDeny;

  kern::PermissionQuery query;
  query.pid = c->pid();
  query.op = op;
  query.op_time = kernel_.clock().now();
  query.detail.assign(detail.data(), detail.size());
  auto reply = channel_->query_permission(query);
  return reply.is_ok() ? reply.value().decision : Decision::kDeny;
}

}  // namespace overhaul::x11
