#include "x11/selection.h"

#include <algorithm>

#include "x11/server.h"

namespace overhaul::x11 {

using util::Code;
using util::Decision;
using util::Op;
using util::Result;
using util::Status;

// --- Fig. 6 step 2: SetSelection ---------------------------------------------

Status SelectionManager::set_selection_owner(ClientId client,
                                             const std::string& selection,
                                             WindowId owner_window) {
  XClient* c = server_.client(client);
  if (c == nullptr) return Status(Code::kNotFound, "no such client");
  Window* win = server_.window(owner_window);
  if (win == nullptr || win->owner() != client)
    return Status(Code::kBadWindow, "selection owner window invalid");

  obs::Tracer::Span span;
  if (auto& tracer = server_.obs().tracer; tracer.enabled()) {
    span = tracer.span("Selection::set_owner", "x11", c->pid());
    span.arg("selection", selection);
  }

  // Overhaul modification: the copy must be correlated with user input
  // before ownership is granted; otherwise the client gets BadAccess.
  if (server_.overhaul_enabled()) {
    const Decision d = server_.ask_monitor(client, Op::kCopy, selection);
    if (d == Decision::kDeny) {
      ++stats_.copies_denied;
      return Status(Code::kBadAccess, "copy not preceded by user input");
    }
    ++stats_.copies_granted;
  }

  owners_[selection] = SelectionOwner{client, owner_window};
  return Status::ok();
}

std::optional<SelectionOwner> SelectionManager::selection_owner(
    const std::string& selection) const {
  const auto it = owners_.find(selection);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

// --- Fig. 6 step 6: ConvertSelection -------------------------------------------

Status SelectionManager::convert_selection(ClientId requestor,
                                           const std::string& selection,
                                           WindowId requestor_window,
                                           const std::string& property,
                                           const std::string& target) {
  XClient* req = server_.client(requestor);
  if (req == nullptr) return Status(Code::kNotFound, "no such client");
  Window* win = server_.window(requestor_window);
  if (win == nullptr || win->owner() != requestor)
    return Status(Code::kBadWindow, "requestor window invalid");

  obs::Tracer::Span span;
  if (auto& tracer = server_.obs().tracer; tracer.enabled()) {
    span = tracer.span("Selection::convert", "x11", req->pid());
    span.arg("selection", selection);
    span.arg("target", target);
  }

  const auto owner_it = owners_.find(selection);
  if (owner_it == owners_.end())
    return Status(Code::kBadAtom, "selection has no owner: " + selection);

  // Overhaul modification: the paste must be correlated with user input.
  // TARGETS negotiation is metadata, not data — ICCCM clients routinely ask
  // for the format list before the user-driven paste, so it is exempt from
  // the input-correlation check (no clipboard *contents* move).
  if (server_.overhaul_enabled() && target != "TARGETS") {
    const Decision d = server_.ask_monitor(requestor, Op::kPaste, selection);
    if (d == Decision::kDeny) {
      ++stats_.pastes_denied;
      return Status(Code::kBadAccess, "paste not preceded by user input");
    }
    ++stats_.pastes_granted;
  }

  // Record the in-flight transfer and issue SelectionRequest to the owner
  // (step 7). SelectionRequest events originate from the server only.
  transfers_.push_back(Transfer{selection, owner_it->second.client, requestor,
                                requestor_window, property, target,
                                Transfer::State::kRequested, false});

  XClient* owner = server_.client(owner_it->second.client);
  if (owner != nullptr) {
    XEvent ev;
    ev.type = EventType::kSelectionRequest;
    ev.provenance = Provenance::kHardware;  // server-originated, trusted
    ev.synthetic_flag = false;
    ev.window = owner_it->second.window;
    ev.selection = selection;
    ev.property = property;
    ev.target = target;
    ev.requestor = requestor_window;
    owner->enqueue(std::move(ev));
  }
  return Status::ok();
}

// --- Fig. 6 step 8: ChangeProperty -----------------------------------------------

Status SelectionManager::change_property(ClientId client, WindowId window,
                                         const std::string& property,
                                         std::string data) {
  Window* win = server_.window(window);
  if (win == nullptr) return Status(Code::kBadWindow, "no such window");
  // The X maximum-request size bounds one-shot property writes; larger
  // transfers must use INCR.
  if (data.size() > kIncrThreshold)
    return Status(Code::kInvalidArgument,
                  "property exceeds max request size; use INCR");

  // A client may always write properties on its own windows; writing on a
  // foreign window is allowed only for the owner side of an in-flight
  // transfer targeting that window/property pair (the ICCCM data handoff).
  if (win->owner() != client) {
    Transfer* transfer = transfer_on_property(window, property);
    const bool is_owner_handoff = transfer != nullptr &&
                                  transfer->owner == client &&
                                  transfer->state == Transfer::State::kRequested;
    if (!is_owner_handoff)
      return Status(Code::kBadAccess, "property write on foreign window");
    transfer->state = Transfer::State::kDataReady;
  }

  properties_[{window, property}] = std::move(data);
  deliver_property_notify(window, property);
  return Status::ok();
}

// --- Fig. 6 steps 11–12: GetProperty ----------------------------------------------

Result<std::string> SelectionManager::get_property(ClientId client,
                                                   WindowId window,
                                                   const std::string& property) {
  const auto it = properties_.find({window, property});
  if (it == properties_.end())
    return Status(Code::kBadAtom, "no such property: " + property);

  // Core X11 lets ANY client read ANY window's properties — that is the
  // clipboard-sniffing vector. Overhaul restricts in-flight clipboard data
  // to the paste target.
  if (server_.overhaul_enabled()) {
    if (Transfer* transfer = transfer_on_property(window, property);
        transfer != nullptr && transfer->requestor != client) {
      ++stats_.snoops_blocked;
      return Status(Code::kBadAccess,
                    "in-flight clipboard data restricted to paste target");
    }
  }
  return it->second;
}

// --- Fig. 6 step 13: DeleteProperty -------------------------------------------------

Status SelectionManager::delete_property(ClientId client, WindowId window,
                                         const std::string& property) {
  const auto it = properties_.find({window, property});
  if (it == properties_.end())
    return Status(Code::kBadAtom, "no such property: " + property);
  Window* win = server_.window(window);
  if (win == nullptr || (win->owner() != client))
    return Status(Code::kBadAccess, "delete on foreign window");
  properties_.erase(it);

  // INCR: deleting a non-final chunk just frees the property for the next
  // one; the transfer stays in flight (and stays protected).
  if (Transfer* t = transfer_on_property(window, property);
      t != nullptr && t->state == Transfer::State::kIncrActive &&
      !t->incr_final_sent) {
    return Status::ok();
  }

  // Completing transfer(s) on this property ends the in-flight window.
  std::erase_if(transfers_, [&](const Transfer& t) {
    return t.requestor_window == window && t.property == property;
  });
  return Status::ok();
}

// --- INCR protocol --------------------------------------------------------------------

Status SelectionManager::begin_incr(ClientId owner, WindowId requestor_window,
                                    const std::string& property,
                                    std::size_t total_size) {
  Transfer* transfer = transfer_on_property(requestor_window, property);
  if (transfer == nullptr || transfer->owner != owner ||
      transfer->state != Transfer::State::kRequested)
    return Status(Code::kBadAccess, "no matching transfer awaiting data");
  transfer->state = Transfer::State::kIncrActive;
  properties_[{requestor_window, property}] =
      "INCR:" + std::to_string(total_size);
  deliver_property_notify(requestor_window, property);
  return Status::ok();
}

Status SelectionManager::send_incr_chunk(ClientId owner,
                                         WindowId requestor_window,
                                         const std::string& property,
                                         std::string chunk) {
  Transfer* transfer = transfer_on_property(requestor_window, property);
  if (transfer == nullptr || transfer->owner != owner ||
      transfer->state != Transfer::State::kIncrActive)
    return Status(Code::kBadAccess, "no INCR transfer in progress");
  if (transfer->incr_final_sent)
    return Status(Code::kBadRequest, "INCR transfer already terminated");
  if (properties_.count({requestor_window, property}) > 0)
    return Status(Code::kWouldBlock,
                  "previous chunk not yet consumed by the requestor");
  if (chunk.size() > kIncrThreshold)
    return Status(Code::kInvalidArgument, "chunk exceeds maximum size");

  if (chunk.empty()) transfer->incr_final_sent = true;
  properties_[{requestor_window, property}] = std::move(chunk);
  deliver_property_notify(requestor_window, property);
  return Status::ok();
}

void SelectionManager::subscribe_property_events(ClientId client,
                                                 WindowId window) {
  (void)server_.select_input(client, window, kPropertyChangeMask);
}

void SelectionManager::on_client_disconnected(ClientId client) {
  std::erase_if(owners_, [&](const auto& entry) {
    return entry.second.client == client;
  });
  std::erase_if(transfers_, [&](const Transfer& t) {
    return t.owner == client || t.requestor == client;
  });
}

// --- SendEvent policing ------------------------------------------------------------

bool SelectionManager::send_event_allowed(ClientId sender,
                                          const XEvent& event) {
  switch (event.type) {
    case EventType::kSelectionRequest:
      // Only the server issues SelectionRequest events; a client sending one
      // is pumping the selection owner for data (the bypass described in
      // §IV-A). Always blocked.
      return false;
    case EventType::kSelectionNotify: {
      // Allowed only as step 9 of an in-flight transfer: the true owner
      // notifying the true requestor after the data is in place.
      Transfer* t = find_transfer(event.selection, kNoWindow);
      // Search by requestor window since the notify targets it.
      for (auto& transfer : transfers_) {
        if (transfer.selection == event.selection &&
            transfer.requestor_window == event.window) {
          t = &transfer;
          break;
        }
      }
      return t != nullptr && t->owner == sender &&
             (t->state == Transfer::State::kDataReady ||
              t->state == Transfer::State::kIncrActive);
    }
    default:
      return true;  // other synthetic events are delivered (flagged)
  }
}

void SelectionManager::on_selection_notify_sent(ClientId sender,
                                                const XEvent& event) {
  for (auto& transfer : transfers_) {
    if (transfer.selection == event.selection &&
        transfer.requestor_window == event.window &&
        transfer.owner == sender) {
      if (transfer.state == Transfer::State::kDataReady) {
        transfer.state = Transfer::State::kNotified;
      }
      // kIncrActive: the notify accompanies the INCR announcement; the
      // transfer stays in the streaming state.
      return;
    }
  }
}

// --- internals ------------------------------------------------------------------------

Transfer* SelectionManager::find_transfer(const std::string& selection,
                                          ClientId requestor) {
  for (auto& t : transfers_) {
    if (t.selection == selection &&
        (requestor == kNoWindow || t.requestor == requestor))
      return &t;
  }
  return nullptr;
}

Transfer* SelectionManager::transfer_on_property(WindowId window,
                                                 const std::string& property) {
  for (auto& t : transfers_) {
    if (t.requestor_window == window && t.property == property) return &t;
  }
  return nullptr;
}

void SelectionManager::deliver_property_notify(WindowId window,
                                               const std::string& property) {
  Transfer* transfer = transfer_on_property(window, property);
  for (ClientId client_id :
       server_.clients_selecting(window, kPropertyChangeMask)) {
    // Overhaul: while clipboard data is in flight, property events for it
    // are delivered only to the paste target (§IV-A).
    if (server_.overhaul_enabled() && transfer != nullptr &&
        client_id != transfer->requestor) {
      ++stats_.snoops_blocked;
      continue;
    }
    if (XClient* c = server_.client(client_id); c != nullptr) {
      XEvent ev;
      ev.type = EventType::kPropertyNotify;
      ev.provenance = Provenance::kHardware;  // server-originated
      ev.window = window;
      ev.property = property;
      c->enqueue(std::move(ev));
    }
  }
}

}  // namespace overhaul::x11
