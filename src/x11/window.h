// Window model: geometry, stacking, visibility clock, pixel contents.
//
// Carries what the trusted input path needs for its clickjacking defense
// (§IV-A: "OVERHAUL only generates interaction notifications if the X client
// receiving the event has a valid mapped window that has stayed visible
// above a predefined time threshold") and what the screen-capture mediation
// needs (window ownership, pixel buffers for GetImage/CopyArea).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "display/types.h"
#include "sim/clock.h"

namespace overhaul::x11 {

using WindowId = std::uint32_t;
using ClientId = std::uint32_t;

inline constexpr WindowId kNoWindow = 0;
inline constexpr WindowId kRootWindow = 1;
inline constexpr ClientId kServerClient = 0;  // the server itself

// Geometry is shared with the Wayland backend (src/display/types.h).
using Rect = display::Rect;

class Window {
 public:
  Window(WindowId id, ClientId owner, Rect rect)
      : id_(id), owner_(owner), rect_(rect),
        pixels_(static_cast<std::size_t>(rect.width) *
                    static_cast<std::size_t>(rect.height),
                0u) {}

  [[nodiscard]] WindowId id() const noexcept { return id_; }
  [[nodiscard]] ClientId owner() const noexcept { return owner_; }
  [[nodiscard]] const Rect& rect() const noexcept { return rect_; }

  // ConfigureWindow support. Moving a mapped window restarts the visibility
  // clock: otherwise an attacker could map a window far off in a corner,
  // age it past the threshold, then teleport it under the user's pointer
  // right before a click — the same harvest the map-time clock defends
  // against. (A hardening beyond the paper's text; see DESIGN.md §5.)
  void move_to(int x, int y, sim::Timestamp now) noexcept {
    if (mapped_ && (x != rect_.x || y != rect_.y)) mapped_at_ = now;
    rect_.x = x;
    rect_.y = y;
  }
  // Resizing reallocates the pixel buffer (contents reset, like a fresh
  // backing store) and also restarts the clock when mapped.
  void resize(int width, int height, sim::Timestamp now) {
    rect_.width = width;
    rect_.height = height;
    pixels_.assign(static_cast<std::size_t>(width) *
                       static_cast<std::size_t>(height),
                   0u);
    if (mapped_) mapped_at_ = now;
  }

  // --- map state & visibility clock ----------------------------------------
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }
  void map(sim::Timestamp now) noexcept {
    mapped_ = true;
    mapped_at_ = now;  // visibility clock restarts on every map
  }
  void unmap() noexcept { mapped_ = false; }
  [[nodiscard]] sim::Timestamp mapped_at() const noexcept { return mapped_at_; }

  // How long the window has been continuously visible.
  [[nodiscard]] sim::Duration visible_for(sim::Timestamp now) const noexcept {
    if (!mapped_) return sim::Duration{0};
    return now - mapped_at_;
  }

  // --- clickjacking surface -------------------------------------------------
  // Transparent (input-only style) windows can receive events but are never
  // *visible*, so they can never satisfy the visibility threshold.
  [[nodiscard]] bool transparent() const noexcept { return transparent_; }
  void set_transparent(bool t) noexcept { transparent_ = t; }

  // --- pixel contents ---------------------------------------------------------
  [[nodiscard]] std::vector<std::uint32_t>& pixels() noexcept { return pixels_; }
  [[nodiscard]] const std::vector<std::uint32_t>& pixels() const noexcept {
    return pixels_;
  }
  void fill(std::uint32_t argb) {
    std::fill(pixels_.begin(), pixels_.end(), argb);
  }

 private:
  WindowId id_;
  ClientId owner_;
  Rect rect_;
  bool mapped_ = false;
  bool transparent_ = false;
  sim::Timestamp mapped_at_ = sim::Timestamp::never();
  std::vector<std::uint32_t> pixels_;  // ARGB32
};

}  // namespace overhaul::x11
