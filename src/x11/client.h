// XClient: a connected client with its event queue and pid binding.
//
// §IV-A: interaction notifications "are labeled with the PID of the process
// that received the event and a timestamp. The PID serves as an unforgeable
// binding between a window belonging to a process and events, as the mapping
// between X client sockets and the PID is retrieved from the kernel." The
// pid recorded here is that kernel-provided socket-peer binding — clients
// cannot choose it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "kern/task.h"
#include "x11/window.h"

namespace overhaul::x11 {

enum class EventType : std::uint8_t {
  kKeyPress,
  kButtonPress,
  kSelectionRequest,  // server → selection owner: produce the data
  kSelectionNotify,   // owner → requestor: data is ready
  kPropertyNotify,    // property created/changed on a window
  kMapNotify,         // StructureNotify family
  kUnmapNotify,
  kConfigureNotify,
};

// SelectInput masks: which event families a client wants delivered for a
// given window. Any client may select on any window (core X semantics —
// exactly the snooping surface Overhaul polices for in-flight clipboard
// properties). Input events (key/button) are delivered to the window owner
// through the trusted input path and are not selectable by other clients.
enum EventMask : std::uint32_t {
  kNoEventMask = 0,
  kPropertyChangeMask = 1u << 0,
  kStructureNotifyMask = 1u << 1,
};

// Where an input event came from — the provenance tag §IV-A adds to the X
// server ("it was necessary to modify the X server to tag events with the
// extension or driver that generated the event").
enum class Provenance : std::uint8_t {
  kHardware,   // real input driver
  kSendEvent,  // core-protocol SendEvent (synthetic flag set on the wire)
  kXTest,      // XTEST extension fake input
};

struct XEvent {
  EventType type = EventType::kKeyPress;
  Provenance provenance = Provenance::kHardware;
  bool synthetic_flag = false;  // the SendEvent wire-format flag
  WindowId window = kNoWindow;  // delivery window

  // Input payload.
  int keycode = 0;
  int button = 0;
  int x = 0, y = 0;

  // Selection payload.
  std::string selection;  // e.g. "CLIPBOARD", "PRIMARY"
  std::string property;   // property atom carrying the data
  std::string target;     // requested conversion target, e.g. "STRING",
                          // "UTF8_STRING", or "TARGETS" (ICCCM negotiation)
  WindowId requestor = kNoWindow;
};

class XClient {
 public:
  XClient(ClientId id, kern::Pid pid) : id_(id), pid_(pid) {}

  [[nodiscard]] ClientId id() const noexcept { return id_; }
  [[nodiscard]] kern::Pid pid() const noexcept { return pid_; }

  // A client that never pumps its queue cannot grow server memory without
  // bound (the X server disconnects such clients; we drop + count instead
  // so scenarios stay analyzable).
  static constexpr std::size_t kMaxQueuedEvents = 4096;

  void enqueue(XEvent event) {
    if (queue_.size() >= kMaxQueuedEvents) {
      ++dropped_events_;
      return;
    }
    queue_.push_back(std::move(event));
  }

  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_events_;
  }

  [[nodiscard]] bool has_events() const noexcept { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  // Pop the next event (FIFO). Caller must check has_events().
  XEvent next_event() {
    XEvent ev = std::move(queue_.front());
    queue_.pop_front();
    return ev;
  }

  void drain() { queue_.clear(); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }
  void disconnect() noexcept { connected_ = false; }

 private:
  ClientId id_;
  kern::Pid pid_;
  bool connected_ = true;
  std::deque<XEvent> queue_;
  std::uint64_t dropped_events_ = 0;
};

}  // namespace overhaul::x11
