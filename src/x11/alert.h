// AlertOverlay: the trusted output path (§IV-A "Trusted output", Fig. 5).
//
// The implementation is backend-neutral and lives in src/display/alert.h —
// the Wayland compositor hosts the same overlay as a layer-shell surface.
// These aliases keep the historical x11:: spellings working for every
// existing scenario, test, and bench.
#pragma once

#include "display/alert.h"

namespace overhaul::x11 {

using Alert = display::Alert;
using AlertOverlay = display::AlertOverlay;

}  // namespace overhaul::x11
