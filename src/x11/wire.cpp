#include "x11/wire.h"

#include <cstring>

namespace overhaul::x11 {

using util::Code;
using util::Result;

AtomRegistry::AtomRegistry() {
  by_name_["PRIMARY"] = kPrimary;
  by_name_["SECONDARY"] = kSecondary;
  by_name_["CLIPBOARD"] = kClipboard;
  by_name_["STRING"] = kString;
  by_name_["INCR"] = kIncr;
}

Atom AtomRegistry::intern(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const Atom atom = kFirstDynamic + static_cast<Atom>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, atom);
  return atom;
}

Result<std::string> AtomRegistry::name(Atom atom) const {
  if (atom == kAtomNone) return std::string();
  if (atom >= kFirstDynamic) {
    const std::size_t idx = atom - kFirstDynamic;
    if (idx < names_.size()) return names_[idx];
    return util::Status(Code::kBadAtom, "unknown atom");
  }
  for (const auto& [n, a] : by_name_) {
    if (a == atom) return n;
  }
  return util::Status(Code::kBadAtom, "unknown atom");
}

namespace wire {
namespace {

void put_u32(EventRecord& rec, std::size_t off, std::uint32_t v) {
  rec[off] = static_cast<std::uint8_t>(v);
  rec[off + 1] = static_cast<std::uint8_t>(v >> 8);
  rec[off + 2] = static_cast<std::uint8_t>(v >> 16);
  rec[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const EventRecord& rec, std::size_t off) {
  return static_cast<std::uint32_t>(rec[off]) |
         static_cast<std::uint32_t>(rec[off + 1]) << 8 |
         static_cast<std::uint32_t>(rec[off + 2]) << 16 |
         static_cast<std::uint32_t>(rec[off + 3]) << 24;
}

void put_i16(EventRecord& rec, std::size_t off, int v) {
  const auto u = static_cast<std::uint16_t>(static_cast<std::int16_t>(v));
  rec[off] = static_cast<std::uint8_t>(u);
  rec[off + 1] = static_cast<std::uint8_t>(u >> 8);
}

int get_i16(const EventRecord& rec, std::size_t off) {
  const auto u = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(rec[off]) |
      static_cast<std::uint16_t>(rec[off + 1]) << 8);
  return static_cast<std::int16_t>(u);
}

constexpr std::uint8_t kMaxEventCode =
    static_cast<std::uint8_t>(EventType::kConfigureNotify);

}  // namespace

// Layout (little-endian):
//   0     event code | kSyntheticBit
//   1     provenance
//   2-3   keycode (i16)
//   4-7   window (u32)
//   8-11  requestor window (u32)
//   12-15 selection atom (u32)
//   16-19 property atom (u32)
//   20-21 button (i16)
//   22-23 x (i16)
//   24-25 y (i16)
//   26-29 target atom (u32)
//   30-31 reserved (zero)
EventRecord encode_event(const XEvent& event, AtomRegistry& atoms) {
  EventRecord rec{};
  rec[0] = static_cast<std::uint8_t>(event.type);
  if (event.synthetic_flag) rec[0] |= kSyntheticBit;
  rec[1] = static_cast<std::uint8_t>(event.provenance);
  put_i16(rec, 2, event.keycode);
  put_u32(rec, 4, event.window);
  put_u32(rec, 8, event.requestor);
  put_u32(rec, 12,
          event.selection.empty() ? kAtomNone : atoms.intern(event.selection));
  put_u32(rec, 16,
          event.property.empty() ? kAtomNone : atoms.intern(event.property));
  put_i16(rec, 20, event.button);
  put_i16(rec, 22, event.x);
  put_i16(rec, 24, event.y);
  put_u32(rec, 26,
          event.target.empty() ? kAtomNone : atoms.intern(event.target));
  return rec;
}

Result<XEvent> decode_event(const EventRecord& record,
                            const AtomRegistry& atoms) {
  XEvent ev;
  const std::uint8_t code = record[0] & ~kSyntheticBit;
  if (code > kMaxEventCode)
    return util::Status(Code::kBadRequest, "unknown event code");
  ev.type = static_cast<EventType>(code);
  ev.synthetic_flag = (record[0] & kSyntheticBit) != 0;
  if (record[1] > static_cast<std::uint8_t>(Provenance::kXTest))
    return util::Status(Code::kBadRequest, "unknown provenance tag");
  ev.provenance = static_cast<Provenance>(record[1]);
  ev.keycode = get_i16(record, 2);
  ev.window = get_u32(record, 4);
  ev.requestor = get_u32(record, 8);

  auto selection = atoms.name(get_u32(record, 12));
  if (!selection.is_ok()) return selection.status();
  ev.selection = std::move(selection).value();

  auto property = atoms.name(get_u32(record, 16));
  if (!property.is_ok()) return property.status();
  ev.property = std::move(property).value();

  ev.button = get_i16(record, 20);
  ev.x = get_i16(record, 22);
  ev.y = get_i16(record, 24);

  auto target = atoms.name(get_u32(record, 26));
  if (!target.is_ok()) return target.status();
  ev.target = std::move(target).value();
  return ev;
}

}  // namespace wire
}  // namespace overhaul::x11
