#include "x11/input.h"

namespace overhaul::x11 {
// Header-only; anchors the translation unit.
}  // namespace overhaul::x11
