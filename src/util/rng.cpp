#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace overhaul::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

}  // namespace overhaul::util
