// Structured audit log of Overhaul policy decisions.
//
// The paper relies on Overhaul's logs in two evaluation sections: §V-C uses
// them to verify clipboard decisions without visual alerts, and §V-D inspects
// them after the 21-day deployment ("We checked OVERHAUL's logs and verified
// that attempts to access the protected resources were detected and
// blocked"). This log is that facility: an append-only record of every
// grant/deny with enough context to drive those analyses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "util/annotations.h"

namespace overhaul::util {

// The privileged operations Overhaul mediates (paper §III-C:
// op ∈ {copy, paste, scr, mic, cam}; we also log device opens generically).
enum class Op : std::uint8_t {
  kCopy,
  kPaste,
  kScreenCapture,
  kMicrophone,
  kCamera,
  kDeviceOther,  // a protected device that is neither mic nor cam
};

// Number of mediated operations; sized for dense per-Op arrays (the ACG
// grant table in TaskStruct indexes by static_cast<size_t>(op)).
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kDeviceOther) + 1;

std::string_view op_name(Op op) noexcept;

enum class Decision : std::uint8_t { kGrant, kDeny };

struct AuditRecord {
  std::int64_t time_ns = 0;   // virtual time of the decision
  int pid = -1;               // requesting process
  std::string comm;           // process name, if known
  Op op = Op::kDeviceOther;
  Decision decision = Decision::kDeny;
  std::int64_t interaction_age_ns = -1;  // now - last interaction; -1 = never
  std::string detail;                    // device path, selection atom, ...
};

// Decision log with simple query helpers, bounded as a ring: once capacity
// is reached the oldest record is dropped per append, like a rotated syslog.
// The default capacity comfortably holds the §V-D 21-day deployment's record
// stream; long-running harnesses that want stricter memory bounds can lower
// it. Not thread-safe; the simulation is single-threaded by design
// (determinism).
class AuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1'000'000;

  void append(AuditRecord record) {
    ++total_appended_;
    if (capacity_ == 0) {
      // Zero-capacity log: count the drop without touching storage — the
      // push-then-trim loop below would otherwise allocate and free a deque
      // node per append just to throw the record away.
      ++dropped_;
      return;
    }
    records_.push_back(std::move(record));
    while (records_.size() > capacity_) {
      records_.pop_front();
      ++dropped_;
    }
  }
  void clear() {
    records_.clear();
    total_appended_ = 0;
    dropped_ = 0;
  }

  // Shrinking below the current size evicts oldest records immediately.
  void set_capacity(std::size_t cap) {
    capacity_ = cap;
    while (records_.size() > capacity_) {
      records_.pop_front();
      ++dropped_;
    }
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] const std::deque<AuditRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  // Lifetime totals, unaffected by ring eviction.
  [[nodiscard]] std::uint64_t total_appended() const noexcept {
    return total_appended_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] std::size_t count(Decision decision) const noexcept;
  [[nodiscard]] std::size_t count(Op op, Decision decision) const noexcept;
  [[nodiscard]] std::vector<AuditRecord> filter(
      const std::function<bool(const AuditRecord&)>& pred) const;

  // Render one record as a single log line (used by examples and harnesses).
  static std::string format(const AuditRecord& record);

 private:
  // The one log every shard's monitor appends into once the sim goes
  // parallel — mutation stays behind the three members that maintain the
  // ring invariant (size ≤ capacity, totals monotone).
  OVERHAUL_SHARED(append|clear|set_capacity) std::deque<AuditRecord> records_;
  OVERHAUL_SHARD_LOCAL std::size_t capacity_ = kDefaultCapacity;
  OVERHAUL_SHARED(append|clear|set_capacity) std::uint64_t total_appended_ = 0;
  OVERHAUL_SHARED(append|clear|set_capacity) std::uint64_t dropped_ = 0;
};

}  // namespace overhaul::util
