// Shard-ownership annotation vocabulary for the concurrency roadmap.
//
// The ROADMAP's multi-seat sharded kernels and the parallel discrete-event
// engine both need the tree to *declare* which mutable state is confined to
// one shard and which is shared across them — before any thread exists, so
// the lint (tools/lint, rules R8-R10) can enforce the discipline statically
// and the parallel-engine PR inherits an already-partitioned tree.
//
//   OVERHAUL_SHARD_LOCAL        this member is owned by exactly one shard
//                               (today: the single simulation thread); it may
//                               be read and written freely from that shard's
//                               code and must never be handed across.
//   OVERHAUL_SHARED(accessors)  this member is shared between producer and
//                               consumer roles (e.g. the netlink coalescing
//                               buffer between the send fast path and the
//                               monitor's flush barrier). `accessors` is a
//                               '|'-separated list of entry-point function
//                               names; the lint (R8) rejects any write that
//                               is not one of them or call-graph-reachable
//                               from one.
//   OVERHAUL_GUARDED_BY(m)      this member may only be written while mutex
//                               `m` is held (R10). On Clang this also expands
//                               to the thread-safety attribute so
//                               -Wthread-safety checks it natively once real
//                               locks arrive.
//
// The macros expand to nothing (or to Clang thread-safety attributes where
// available), so annotating a header costs nothing at runtime and compiles
// unchanged under GCC. overhaul-lint does not preprocess: it sees the macro
// names as plain identifier tokens, which is exactly how the R8-R10 rules
// read the declarations back out of the token stream.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define OVERHAUL_GUARDED_BY(m) __attribute__((guarded_by(m)))
#endif
#endif

#ifndef OVERHAUL_GUARDED_BY
#define OVERHAUL_GUARDED_BY(m)
#endif

// No compiler attribute maps to shard ownership or accessor discipline; these
// exist for the analyzer (and the reader).
#define OVERHAUL_SHARD_LOCAL
#define OVERHAUL_SHARED(accessors)

// Function-level lane-context vocabulary for the parallel engine (R13).
// Both must be the FIRST token of a function *definition* — the analyzer
// attaches the annotation to the definition that immediately follows it.
//
//   OVERHAUL_COORDINATOR_ONLY   this function mutates coordinator state
//                               (lifecycle, barrier, link-table drains,
//                               cross-shard rollups) and must only run
//                               between quanta, on the coordinator thread.
//                               R13 reports any call path from a worker-lane
//                               entry point that reaches it.
//   OVERHAUL_LANE_SAFE          this function is an audited lane-safe
//                               boundary (e.g. the deferred outbox surface):
//                               safe to call from lane context by contract,
//                               so R13 does not search past it.
#define OVERHAUL_COORDINATOR_ONLY
#define OVERHAUL_LANE_SAFE
