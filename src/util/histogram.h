// Histogram: fixed-bin statistics for workload characterization.
//
// The δ ablation's false-deny curve is only as meaningful as the latency
// distribution behind it; benches print the distribution alongside the
// curve so a reader can audit the model (mean, percentiles, bin counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace overhaul::util {

class Histogram {
 public:
  // Uniform bins over [lo, hi); samples outside are clamped into the edge
  // bins and counted separately as underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  // Percentile via linear interpolation across bins (p in [0, 100]).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<std::uint64_t>& bins() const noexcept {
    return bins_;
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  // Compact text rendering: one line per non-empty bin with a bar.
  [[nodiscard]] std::string to_string(int bar_width = 40) const;

  // Zeroes all bins and statistics, keeping the [lo, hi) layout. Lets the
  // obs MetricsRegistry re-baseline without invalidating handles.
  void reset();

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace overhaul::util
