// Deterministic random number generation for workload models.
//
// All stochastic pieces of the reproduction (user think times, the §V-B
// attention model, the §V-D diurnal interaction model) draw from this RNG so
// every harness run is reproducible from a seed printed in its output.
#pragma once

#include <cstdint>

namespace overhaul::util {

// splitmix64-seeded xoshiro256**. Small, fast, and good enough statistical
// quality for workload synthesis; never used for anything security-relevant.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Bernoulli trial.
  bool chance(double p) noexcept { return next_double() < p; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  // Exponentially distributed with the given mean (> 0).
  double exponential(double mean) noexcept;

  // Normal via Box-Muller (unclamped).
  double normal(double mean, double stddev) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace overhaul::util
