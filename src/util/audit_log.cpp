#include "util/audit_log.h"

#include <algorithm>
#include <cstdio>

namespace overhaul::util {

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kCopy: return "copy";
    case Op::kPaste: return "paste";
    case Op::kScreenCapture: return "scr";
    case Op::kMicrophone: return "mic";
    case Op::kCamera: return "cam";
    case Op::kDeviceOther: return "dev";
  }
  return "?";
}

std::size_t AuditLog::count(Decision decision) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const AuditRecord& r) { return r.decision == decision; }));
}

std::size_t AuditLog::count(Op op, Decision decision) const noexcept {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [&](const AuditRecord& r) {
        return r.op == op && r.decision == decision;
      }));
}

std::vector<AuditRecord> AuditLog::filter(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::vector<AuditRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out), pred);
  return out;
}

std::string AuditLog::format(const AuditRecord& record) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "[%12.6fs] pid=%-6d %-12s op=%-5s %-5s age=%.3fs %s",
                static_cast<double>(record.time_ns) / 1e9, record.pid,
                record.comm.c_str(), std::string(op_name(record.op)).c_str(),
                record.decision == Decision::kGrant ? "GRANT" : "DENY",
                record.interaction_age_ns < 0
                    ? -1.0
                    : static_cast<double>(record.interaction_age_ns) / 1e9,
                record.detail.c_str());
  return buf;
}

}  // namespace overhaul::util
