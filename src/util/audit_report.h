// Audit-log analysis: the queries the paper runs over Overhaul's logs.
//
// §V-D: "We also investigated OVERHAUL's logs to see which applications
// were granted access to the protected resources. The camera and microphone
// were used by two video conferencing applications. Screen was captured by
// the system's default screenshot tool, and by a desktop recording
// application. Clipboard accesses were logged for a large number of
// applications." This module computes exactly that report, plus the
// false-positive scan §V-C performs for clipboard apps.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/audit_log.h"

namespace overhaul::util {

// Per-application, per-operation decision counts.
struct AppUsage {
  std::string comm;
  std::map<Op, std::uint64_t> grants;
  std::map<Op, std::uint64_t> denials;

  [[nodiscard]] std::uint64_t total_grants() const;
  [[nodiscard]] std::uint64_t total_denials() const;
};

struct AuditReport {
  std::vector<AppUsage> apps;  // sorted by comm

  // Applications granted a specific resource at least once.
  [[nodiscard]] std::vector<std::string> apps_granted(Op op) const;
  // Applications with at least one denial for the op.
  [[nodiscard]] std::vector<std::string> apps_denied(Op op) const;
  [[nodiscard]] const AppUsage* find(const std::string& comm) const;

  // Render the §V-D style narrative table.
  [[nodiscard]] std::string to_string() const;
};

// Build the report from a record stream — works for the text log's deque,
// the binary facade's decoded vector (audit::Sink::records()), and decoded
// snapshot streams alike.
AuditReport build_report(const std::vector<AuditRecord>& records);
// Build the report from a text log.
AuditReport build_report(const AuditLog& log);

}  // namespace overhaul::util
