#include "util/status.h"

namespace overhaul::util {

std::string_view code_name(Code code) noexcept {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kExists: return "EXISTS";
    case Code::kPermissionDenied: return "PERMISSION_DENIED";
    case Code::kOverhaulDenied: return "OVERHAUL_DENIED";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kNotSupported: return "NOT_SUPPORTED";
    case Code::kWouldBlock: return "WOULD_BLOCK";
    case Code::kBrokenChannel: return "BROKEN_CHANNEL";
    case Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Code::kBusy: return "BUSY";
    case Code::kBadAccess: return "BAD_ACCESS";
    case Code::kBadWindow: return "BAD_WINDOW";
    case Code::kBadAtom: return "BAD_ATOM";
    case Code::kBadRequest: return "BAD_REQUEST";
    case Code::kNotAuthenticated: return "NOT_AUTHENTICATED";
    case Code::kSyntheticInput: return "SYNTHETIC_INPUT";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace overhaul::util
