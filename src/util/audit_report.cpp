#include "util/audit_report.h"

#include <algorithm>
#include <cstdio>

namespace overhaul::util {

std::uint64_t AppUsage::total_grants() const {
  std::uint64_t n = 0;
  for (const auto& [op, count] : grants) {
    (void)op;
    n += count;
  }
  return n;
}

std::uint64_t AppUsage::total_denials() const {
  std::uint64_t n = 0;
  for (const auto& [op, count] : denials) {
    (void)op;
    n += count;
  }
  return n;
}

std::vector<std::string> AuditReport::apps_granted(Op op) const {
  std::vector<std::string> out;
  for (const auto& app : apps) {
    if (const auto it = app.grants.find(op);
        it != app.grants.end() && it->second > 0)
      out.push_back(app.comm);
  }
  return out;
}

std::vector<std::string> AuditReport::apps_denied(Op op) const {
  std::vector<std::string> out;
  for (const auto& app : apps) {
    if (const auto it = app.denials.find(op);
        it != app.denials.end() && it->second > 0)
      out.push_back(app.comm);
  }
  return out;
}

const AppUsage* AuditReport::find(const std::string& comm) const {
  for (const auto& app : apps) {
    if (app.comm == comm) return &app;
  }
  return nullptr;
}

std::string AuditReport::to_string() const {
  std::string out =
      "application        op     grants  denials\n";
  char line[128];
  for (const auto& app : apps) {
    std::map<Op, std::pair<std::uint64_t, std::uint64_t>> merged;
    for (const auto& [op, n] : app.grants) merged[op].first = n;
    for (const auto& [op, n] : app.denials) merged[op].second = n;
    for (const auto& [op, counts] : merged) {
      std::snprintf(line, sizeof(line), "%-18s %-6s %6llu %8llu\n",
                    app.comm.c_str(), std::string(op_name(op)).c_str(),
                    static_cast<unsigned long long>(counts.first),
                    static_cast<unsigned long long>(counts.second));
      out += line;
    }
  }
  return out;
}

namespace {

template <typename Records>
AuditReport build_report_impl(const Records& records) {
  std::map<std::string, AppUsage> by_comm;
  for (const auto& rec : records) {
    AppUsage& usage = by_comm[rec.comm];
    usage.comm = rec.comm;
    if (rec.decision == Decision::kGrant) {
      ++usage.grants[rec.op];
    } else {
      ++usage.denials[rec.op];
    }
  }
  AuditReport report;
  report.apps.reserve(by_comm.size());
  for (auto& [comm, usage] : by_comm) {
    (void)comm;
    report.apps.push_back(std::move(usage));
  }
  return report;  // std::map iteration already sorted by comm
}

}  // namespace

AuditReport build_report(const std::vector<AuditRecord>& records) {
  return build_report_impl(records);
}

AuditReport build_report(const AuditLog& log) {
  return build_report_impl(log.records());
}

}  // namespace overhaul::util
