#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace overhaul::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      bins_(bins, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::add(double sample) {
  ++count_;
  sum_ += sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
  if (sample < lo_) {
    ++underflow_;
    ++bins_.front();
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    ++bins_.back();
    return;
  }
  const auto idx = static_cast<std::size_t>((sample - lo_) / (hi_ - lo_) *
                                            static_cast<double>(bins_.size()));
  ++bins_[std::min(idx, bins_.size() - 1)];
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t running = 0;
  const double bin_width = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const std::uint64_t next = running + bins_[i];
    if (static_cast<double>(next) >= target) {
      const double within =
          bins_[i] == 0
              ? 0.0
              : (target - static_cast<double>(running)) /
                    static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + within) * bin_width;
    }
    running = next;
  }
  return hi_;
}

std::string Histogram::to_string(int bar_width) const {
  std::string out;
  const std::uint64_t peak =
      *std::max_element(bins_.begin(), bins_.end());
  if (peak == 0) return "(empty)\n";
  const double bin_width = (hi_ - lo_) / static_cast<double>(bins_.size());
  char line[160];
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const int bar = static_cast<int>(
        static_cast<double>(bins_[i]) / static_cast<double>(peak) * bar_width);
    std::snprintf(line, sizeof(line), "%10.3f..%-10.3f %8llu |%s\n",
                  lo_ + static_cast<double>(i) * bin_width,
                  lo_ + static_cast<double>(i + 1) * bin_width,
                  static_cast<unsigned long long>(bins_[i]),
                  std::string(static_cast<std::size_t>(std::max(bar, 1)), '#')
                      .c_str());
    out += line;
  }
  return out;
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  count_ = 0;
  underflow_ = 0;
  overflow_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace overhaul::util
