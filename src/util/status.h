// Lightweight status / result types used across all Overhaul subsystems.
//
// The simulated kernel and display server report errors the way their real
// counterparts do (errno-style codes, X11 BadAccess-style errors), so the
// status vocabulary below is deliberately close to those domains instead of
// being a generic error enum.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace overhaul::util {

// Error codes shared by the kernel and display-server layers. Values are
// stable so they can be logged and asserted on in tests.
enum class Code : std::uint8_t {
  kOk = 0,
  // Generic / kernel-side (errno-flavoured).
  kNotFound,          // ENOENT: no such file, process, or IPC object
  kExists,            // EEXIST
  kPermissionDenied,  // EACCES: denied by classic UNIX DAC
  kOverhaulDenied,    // denied by the Overhaul permission monitor
  kInvalidArgument,   // EINVAL
  kNotSupported,      // ENOSYS
  kWouldBlock,        // EAGAIN: empty pipe/queue in non-blocking mode
  kBrokenChannel,     // EPIPE: peer closed
  kResourceExhausted, // ENOSPC / ENFILE
  kBusy,              // EBUSY
  // Display-server side (X11-flavoured).
  kBadAccess,   // X11 BadAccess: protocol-level denial
  kBadWindow,   // X11 BadWindow
  kBadAtom,     // X11 BadAtom: unknown selection/property
  kBadRequest,  // malformed or out-of-protocol request
  // Trusted-path specific.
  kNotAuthenticated,  // netlink peer failed introspection check
  kSyntheticInput,    // event rejected as software-generated
};

// Human-readable name for a code ("OVERHAUL_DENIED", "BAD_ACCESS", ...).
std::string_view code_name(Code code) noexcept;

// A status is a code plus optional context. kOk statuses carry no message.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  // True when the failure was an Overhaul policy decision (as opposed to a
  // classic DAC or protocol error). Used by the audit log and tests.
  [[nodiscard]] bool is_policy_denial() const noexcept {
    return code_ == Code::kOverhaulDenied || code_ == Code::kBadAccess;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK status. Minimal std::expected stand-in
// (C++20 toolchain; std::expected is C++23).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) { // NOLINT(google-explicit-constructor)
  }
  Result(Code code) : status_(code) {}                 // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] Code code() const noexcept { return status_.code(); }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ present
};

}  // namespace overhaul::util
