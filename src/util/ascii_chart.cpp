#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace overhaul::util {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x'};
}

std::string AsciiChart::render() const {
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (series_.empty()) return out + "(no data)\n";

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = 0.0;  // anchor at zero: these are rates/counts
  double ymax = -std::numeric_limits<double>::infinity();
  for (const auto& s : series_) {
    for (double v : s.x) {
      xmin = std::min(xmin, v);
      xmax = std::max(xmax, v);
    }
    for (double v : s.y) {
      ymin = std::min(ymin, v);
      ymax = std::max(ymax, v);
    }
  }
  if (!(xmax > xmin)) xmax = xmin + 1;
  if (!(ymax > ymin)) ymax = ymin + 1;

  // Plot grid.
  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  const auto to_col = [&](double x) {
    return std::clamp(static_cast<int>(std::lround(
                          (x - xmin) / (xmax - xmin) * (width_ - 1))),
                      0, width_ - 1);
  };
  const auto to_row = [&](double y) {
    return std::clamp(static_cast<int>(std::lround(
                          (1.0 - (y - ymin) / (ymax - ymin)) * (height_ - 1))),
                      0, height_ - 1);
  };

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char marker = kMarkers[si % sizeof(kMarkers)];
    const auto& s = series_[si];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    // Connect consecutive points with linear interpolation for readability.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const int c0 = to_col(s.x[i]), c1 = to_col(s.x[i + 1]);
      for (int c = c0; c <= c1; ++c) {
        const double t =
            c1 == c0 ? 0.0 : static_cast<double>(c - c0) / (c1 - c0);
        const double y = s.y[i] + t * (s.y[i + 1] - s.y[i]);
        grid[static_cast<std::size_t>(to_row(y))][static_cast<std::size_t>(c)] =
            marker;
      }
    }
    if (n == 1) {
      grid[static_cast<std::size_t>(to_row(s.y[0]))]
          [static_cast<std::size_t>(to_col(s.x[0]))] = marker;
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.3g |", ymax);
  out += std::string(buf) + grid[0] + "\n";
  for (int r = 1; r < height_ - 1; ++r) {
    out += std::string(10, ' ') + " |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.3g |", ymin);
  out += std::string(buf) + grid[static_cast<std::size_t>(height_ - 1)] + "\n";
  out += std::string(11, ' ') + '+' + std::string(static_cast<std::size_t>(width_), '-') + "\n";
  std::snprintf(buf, sizeof(buf), "%-12.4g", xmin);
  std::string axis = std::string(12, ' ') + buf;
  std::snprintf(buf, sizeof(buf), "%12.4g", xmax);
  // Right-align xmax at the end of the plot width.
  const std::size_t target =
      12 + static_cast<std::size_t>(width_) - std::string(buf).size() + 1;
  if (axis.size() < target) axis += std::string(target - axis.size(), ' ');
  axis += buf;
  out += axis + "\n";

  // Legend.
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out += "            ";
    out += kMarkers[si % sizeof(kMarkers)];
    out += " " + series_[si].label + "\n";
  }
  if (!y_label_.empty()) out += "            y: " + y_label_ + "\n";
  return out;
}

}  // namespace overhaul::util
