// AsciiChart: tiny terminal plots for benchmark sweep output.
//
// The ablation benches print curves (false-deny rate vs δ, faults vs wait);
// a picture of the knee communicates the paper's parameter choices better
// than a table alone. No dependencies, fixed-width output.
#pragma once

#include <string>
#include <vector>

namespace overhaul::util {

struct ChartSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

class AsciiChart {
 public:
  AsciiChart(int width, int height) : width_(width), height_(height) {}

  void add_series(ChartSeries series) { series_.push_back(std::move(series)); }
  void set_title(std::string title) { title_ = std::move(title); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  // Render to a string: title, y-axis scale, plot area (one marker glyph
  // per series: *, o, +, x), x-axis with min/max.
  [[nodiscard]] std::string render() const;

 private:
  int width_;
  int height_;
  std::string title_;
  std::string y_label_;
  std::vector<ChartSeries> series_;
};

}  // namespace overhaul::util
