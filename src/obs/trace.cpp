#include "obs/trace.h"

namespace overhaul::obs {

void Tracer::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void Tracer::instant(std::string name, std::string cat, int pid,
                     std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.phase = TracePhase::kInstant;
  event.ts = clock_.now();
  event.pid = pid;
  event.args = std::move(args);
  push(std::move(event));
}

Tracer::Span Tracer::span(std::string name, std::string cat, int pid) {
  if (!enabled_) return Span{};
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.phase = TracePhase::kComplete;
  event.ts = clock_.now();
  event.pid = pid;
  return Span{this, std::move(event)};
}

void Tracer::Span::finish() {
  Tracer* tracer = std::exchange(tracer_, nullptr);
  if (tracer == nullptr) return;
  event_.dur = tracer->clock_.now() - event_.ts;
  tracer->push(std::move(event_));
}

void Tracer::clear() {
  events_.clear();
  emitted_ = 0;
  dropped_ = 0;
}

void Tracer::push(TraceEvent event) {
  if (capacity_ == 0) {
    ++emitted_;
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
  ++emitted_;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

}  // namespace overhaul::obs
