// Exporters for the obs::Tracer ring buffer.
//
// Two formats: Chrome `trace_event` JSON (load in chrome://tracing or
// Perfetto) and a plain-text per-name summary for terminal inspection.
// Virtual timestamps are exported as-is — microseconds since the simulation
// epoch in the JSON `ts` field — so two runs of the same scenario produce
// byte-identical traces.
#pragma once

#include <string>

#include "sim/clock.h"

namespace overhaul::obs {

class Tracer;

// Full Chrome trace_event document:
//   {"displayTimeUnit":"ms","traceEvents":[{"name",...,"ph":"X","ts",...}]}
// `ts`/`dur` are microseconds (trace_event convention); sub-microsecond
// remainders are kept as fractional values so short spans stay visible.
[[nodiscard]] std::string to_chrome_json(const Tracer& tracer);

// Per-name roll-up: event count, total/mean virtual duration, plus the
// ring-buffer emitted/dropped totals so truncation is visible.
[[nodiscard]] std::string to_text_summary(const Tracer& tracer);

// Renders a virtual timestamp as "+12.345678s" relative to the simulation
// epoch. Virtual time has no calendar; it never maps to wall-clock dates.
[[nodiscard]] std::string format_virtual_time(sim::Timestamp ts);

}  // namespace overhaul::obs
