#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace overhaul::obs::json {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(std::string_view raw) { return "\"" + escape(raw) + "\""; }

namespace {

// Recursive-descent validator. Kept deliberately strict: trailing commas,
// bare NaN/Infinity, unescaped control characters, and trailing garbage all
// fail — a document that passes here parses in any real JSON consumer
// (chrome://tracing included).
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing garbage";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) const {
    if (error != nullptr)
      *error = (error_.empty() ? std::string("invalid JSON") : error_) +
               " at offset " + std::to_string(pos_);
    return false;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r'))
      ++pos_;
  }

  bool expect(char c) {
    if (at_end() || peek() != c) {
      error_ = std::string("expected '") + c + "'";
      return false;
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      error_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) {
      error_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    if (at_end()) {
      error_ = "unexpected end of input";
    } else {
      switch (peek()) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    if (!expect('{')) return false;
    skip_ws();
    if (!at_end() && peek() == '}') return expect('}');
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!at_end() && peek() == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool array() {
    if (!expect('[')) return false;
    skip_ws();
    if (!at_end() && peek() == ']') return expect(']');
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!at_end() && peek() == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool string() {
    if (!expect('"')) return false;
    while (true) {
      if (at_end()) {
        error_ = "unterminated string";
        return false;
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        error_ = "raw control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (at_end()) {
          error_ = "dangling escape";
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (at_end() || std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])) == 0) {
              error_ = "bad \\u escape";
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          error_ = "bad escape";
          return false;
        }
      }
      ++pos_;
    }
  }

  bool digits() {
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      error_ = "expected digit";
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
      ++pos_;
    return true;
  }

  bool number() {
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end()) {
      error_ = "bad number";
      return false;
    }
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool validate(std::string_view text, std::string* error) {
  return Validator(text).run(error);
}

}  // namespace overhaul::obs::json
