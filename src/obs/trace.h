// Tracer: virtual-time spans and instant events in a bounded ring buffer.
//
// The §V-C/§V-D evaluations are log investigations — "we checked OVERHAUL's
// logs and verified that attempts ... were detected and blocked". The audit
// log answers *what was decided*; the tracer answers *what happened around
// the decision*: which netlink message arrived, which X request dispatched,
// which page fault fired, all stamped with sim::Clock virtual time so a run
// is replayable tick for tick. Events export as Chrome `trace_event` JSON
// (chrome://tracing / Perfetto) or as a text summary (obs/trace_export.h).
//
// The buffer is a fixed-capacity ring: the newest events win, the oldest are
// dropped, and the emitted/dropped totals are preserved so a reader always
// knows how much history the window lost.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "util/annotations.h"

namespace overhaul::obs {

// Mirrors the Chrome trace_event phases this repo emits: complete spans
// ("X", with a duration) and instant events ("i").
enum class TracePhase : char { kComplete = 'X', kInstant = 'i' };

struct TraceArg {
  std::string key;
  std::string value;
};

struct TraceEvent {
  std::string name;            // e.g. "PermissionMonitor::check"
  std::string cat;             // subsystem: "monitor", "netlink", "x11", ...
  TracePhase phase = TracePhase::kInstant;
  sim::Timestamp ts;           // virtual time at begin/instant
  sim::Duration dur{0};        // virtual duration (complete spans)
  int pid = 0;                 // acting process, 0 = kernel/none
  std::vector<TraceArg> args;  // small key/value context
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 16'384;

  explicit Tracer(sim::Clock& clock, std::size_t capacity = kDefaultCapacity)
      : clock_(clock), capacity_(capacity) {}

  // Tracing is on by default; benchmark configs switch it off so the
  // Overhaul column of Table I never pays event-recording costs the
  // baseline column does not.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Shrinking the capacity drops the oldest events immediately.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void instant(std::string name, std::string cat, int pid,
               std::vector<TraceArg> args = {});

  // RAII span: records the begin timestamp at creation and emits one
  // complete ("X") event at finish()/destruction. Inert when the tracer is
  // disabled — a span on a hot path then costs two pointer writes.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept
        : tracer_(std::exchange(other.tracer_, nullptr)),
          event_(std::move(other.event_)) {}
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = std::exchange(other.tracer_, nullptr);
        event_ = std::move(other.event_);
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    void arg(std::string key, std::string value) {
      if (tracer_ != nullptr)
        event_.args.push_back({std::move(key), std::move(value)});
    }

    // Emits the event (idempotent). Duration = virtual time since creation.
    void finish();

   private:
    friend class Tracer;
    Span(Tracer* tracer, TraceEvent event)
        : tracer_(tracer), event_(std::move(event)) {}

    Tracer* tracer_ = nullptr;
    TraceEvent event_;
  };

  [[nodiscard]] Span span(std::string name, std::string cat, int pid);

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return events_;
  }
  // Totals survive ring wraparound: emitted() counts every event ever
  // recorded, dropped() how many the ring has evicted.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void clear();

 private:
  void push(TraceEvent event);

  sim::Clock& clock_;
  OVERHAUL_SHARD_LOCAL std::size_t capacity_;
  OVERHAUL_SHARD_LOCAL bool enabled_ = true;
  OVERHAUL_SHARD_LOCAL std::deque<TraceEvent> events_;
  OVERHAUL_SHARD_LOCAL std::uint64_t emitted_ = 0;
  OVERHAUL_SHARD_LOCAL std::uint64_t dropped_ = 0;
};

}  // namespace overhaul::obs
