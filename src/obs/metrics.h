// MetricsRegistry: named counters, gauges, and histograms for the whole
// mediation stack.
//
// The paper's evaluation is entirely measured behaviour — Table I overheads,
// the §V-C/§V-D log investigations — and Roesner et al.'s ACG work [27]
// argues a permission system needs auditable decision telemetry to evaluate
// its precision. This registry is the repo's first-class answer: every
// subsystem (permission monitor, netlink hub, IPC families, page-fault
// engine, X server, scheduler) registers named instruments once at boot and
// then updates them through pre-resolved handles, so a hot path pays one
// relaxed atomic add — never a map lookup.
//
// Naming scheme (DESIGN.md §9): `<subsystem>.<object>.<event>`, lowercase,
// dot-separated — e.g. `monitor.decisions.granted`, `ipc.pipe.send_stamps`,
// `netlink.channel.broken_rejects`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/annotations.h"
#include "util/histogram.h"

namespace overhaul::obs {

// Monotonic event count. The simulation is single-threaded by design, but
// relaxed atomics make the handle safe to share and cost the same as a plain
// increment on every target we build for.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time level (queue depth, live channels). Signed: levels can dip
// below a baseline during draining.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_seen() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  // set() + high-water tracking in one call (used for queue depths).
  void record(std::int64_t v) noexcept {
    set(v);
    if (v > max_.load(std::memory_order_relaxed))
      max_.store(v, std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

// Get-or-create registry. Handles returned are stable for the registry's
// lifetime (instruments are heap-allocated and never erased), which is what
// makes pre-resolving them at attach time sound.
class MetricsRegistry {
 public:
  // Namespace prefix prepended to every name at registration time — the
  // fleet harness sets "fleet.shard<N>." per shard so aggregated registries
  // never collide (DESIGN.md §14). One string concatenation when an
  // instrument is first resolved; handles are pre-resolved at boot, so the
  // hot path never sees the prefix. Set before the first registration:
  // already-registered instruments keep their original names.
  void set_prefix(std::string prefix) { prefix_ = std::move(prefix); }
  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // Histograms reuse util::Histogram (uniform bins over [lo, hi)). Repeated
  // registration under one name returns the existing instance.
  util::Histogram* histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  // Read-only lookups (nullptr when absent) — for tests and exporters.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const util::Histogram* find_histogram(
      const std::string& name) const;

  // Convenience for assertions and /proc rendering: 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  // Read-only visitation in name order — the aggregate-on-read view the
  // fleet harness sums across shard registries. Full (prefixed) names.
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;

  // One `name value` line per instrument, sorted by name — the
  // /proc/overhaul/metrics snapshot format.
  [[nodiscard]] std::string to_text() const;
  // Machine-readable snapshot: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,mean,min,max,p50,p99}}}.
  [[nodiscard]] std::string to_json() const;

  // Zeroes every instrument without invalidating handles.
  void reset();

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // The registry maps mutate only at registration time (single-threaded
  // boot); the instruments themselves are relaxed atomics, so concurrent
  // updates through resolved handles never touch these members.
  OVERHAUL_SHARD_LOCAL std::map<std::string, std::unique_ptr<Counter>> counters_;
  OVERHAUL_SHARD_LOCAL std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  OVERHAUL_SHARD_LOCAL std::map<std::string, std::unique_ptr<util::Histogram>>
      histograms_;
  OVERHAUL_SHARD_LOCAL std::string prefix_;
};

}  // namespace overhaul::obs
