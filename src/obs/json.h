// Minimal JSON utilities for the observability subsystem.
//
// Exporters in this repo emit JSON by construction (no external library is
// available in the build image), so correctness is enforced from the other
// side: a small strict validator that tests and tools (tools/obs/json_check,
// the check.sh --metrics smoke step) run over every emitted document. The
// escape helper is shared by all emitters so a stray quote in a device path
// or process name cannot corrupt a document.
#pragma once

#include <string>
#include <string_view>

namespace overhaul::obs::json {

// Escapes `raw` for inclusion inside a JSON string literal (without the
// surrounding quotes): quote, backslash, and control characters.
std::string escape(std::string_view raw);

// `escape` plus the surrounding quotes — the common case for emitters.
std::string quote(std::string_view raw);

// Strict RFC-8259-shaped validator: one complete value, then end of input.
// Returns false and sets `error` (when non-null) to a short
// offset-annotated message on the first violation.
bool validate(std::string_view text, std::string* error = nullptr);

}  // namespace overhaul::obs::json
