#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace overhaul::obs {

namespace {

// Fixed-precision double rendering that is always valid JSON. An empty
// histogram reports min/max as ±infinity; JSON has no such literal, so
// non-finite values render as 0.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[prefix_.empty() ? name : prefix_ + name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[prefix_.empty() ? name : prefix_ + name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

util::Histogram* MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  auto& slot = histograms_[prefix_.empty() ? name : prefix_ + name];
  if (slot == nullptr) slot = std::make_unique<util::Histogram>(lo, hi, bins);
  return slot.get();
}

// Lookups qualify the same way registration does, so a name that resolved an
// instrument always finds it again — with or without a shard prefix.
const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it =
      counters_.find(prefix_.empty() ? name : prefix_ + name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(prefix_.empty() ? name : prefix_ + name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const util::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it =
      histograms_.find(prefix_.empty() ? name : prefix_ + name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  for (const auto& [name, c] : counters_) fn(name, *c);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, g] : gauges_) fn(name, *g);
}

std::string MetricsRegistry::to_text() const {
  // std::map iteration is already name-sorted; the three sections are
  // emitted in a fixed order so the snapshot is byte-stable for tests.
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + std::to_string(g->value()) + " max=" +
           std::to_string(g->max_seen()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + std::to_string(h->count()) +
           " mean=" + num(h->mean()) + " p99=" + num(h->percentile(99)) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":{\"value\":" + std::to_string(g->value()) +
           ",\"max\":" + std::to_string(g->max_seen()) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":{\"count\":" + std::to_string(h->count()) +
           ",\"mean\":" + num(h->mean()) + ",\"min\":" + num(h->min()) +
           ",\"max\":" + num(h->max()) + ",\"p50\":" + num(h->percentile(50)) +
           ",\"p99\":" + num(h->percentile(99)) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace overhaul::obs
