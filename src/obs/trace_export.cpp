#include "obs/trace_export.h"

#include <cstdio>
#include <map>

#include "obs/json.h"
#include "obs/trace.h"

namespace overhaul::obs {

namespace {

// Nanoseconds → microseconds with up to three fractional digits (the
// trace_event `ts` unit). Rendered from integer parts so the output never
// depends on floating-point formatting.
std::string micros(std::int64_t ns) {
  std::string out;
  if (ns < 0) {
    out += '-';
    ns = -ns;
  }
  out += std::to_string(ns / 1'000);
  const std::int64_t frac = ns % 1'000;
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%03lld",
                  static_cast<long long>(frac));
    out += buf;
  }
  return out;
}

}  // namespace

std::string to_chrome_json(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : tracer.events()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json::quote(e.name) +
           ",\"cat\":" + json::quote(e.cat) + ",\"ph\":\"" +
           static_cast<char>(e.phase) + "\",\"ts\":" + micros(e.ts.ns);
    if (e.phase == TracePhase::kComplete)
      out += ",\"dur\":" + micros(e.dur.ns);
    out += ",\"pid\":" + std::to_string(e.pid) + ",\"tid\":" +
           std::to_string(e.pid);
    if (e.phase == TracePhase::kInstant) out += ",\"s\":\"g\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const TraceArg& a : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += json::quote(a.key) + ":" + json::quote(a.value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_text_summary(const Tracer& tracer) {
  struct Roll {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
  };
  std::map<std::string, Roll> rolls;
  for (const TraceEvent& e : tracer.events()) {
    Roll& r = rolls[e.cat + "/" + e.name];
    ++r.count;
    r.total_ns += e.dur.ns;
  }
  std::string out = "trace summary: " + std::to_string(tracer.emitted()) +
                    " events emitted, " + std::to_string(tracer.dropped()) +
                    " dropped, " + std::to_string(tracer.events().size()) +
                    " buffered\n";
  for (const auto& [name, r] : rolls) {
    out += "  " + name + " count=" + std::to_string(r.count);
    if (r.total_ns > 0) {
      out += " total=" + micros(r.total_ns) + "us";
      out += " mean=" + micros(r.total_ns / static_cast<std::int64_t>(r.count)) +
             "us";
    }
    out += "\n";
  }
  return out;
}

std::string format_virtual_time(sim::Timestamp ts) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "+%lld.%09llds",
                static_cast<long long>(ts.ns / 1'000'000'000),
                static_cast<long long>(ts.ns % 1'000'000'000));
  return buf;
}

}  // namespace overhaul::obs
