// Observability bundle: one metrics registry + one tracer per simulation.
//
// The kernel, X server, and scheduler all record into the same bundle so a
// single /proc/overhaul/metrics read (or trace export) covers the whole
// mediation stack. Owned by kern::Kernel (constructed next to the clock) and
// handed down by pointer; subsystems treat a null pointer as "observability
// off" and skip recording entirely.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace overhaul::obs {

struct Observability {
  explicit Observability(sim::Clock& clock) : tracer(clock) {}

  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace overhaul::obs
