// Timeline: a unified, time-ordered explanation of a session.
//
// Merges the display server's input trace, the kernel audit log, the alert
// overlay history, and the prompt history into one sorted sequence — the
// "why did this grant happen" view. Everything here is derived from data
// the subsystems already keep; building a timeline has no effect on the
// system.
#pragma once

#include <string>
#include <vector>

#include "core/system.h"

namespace overhaul::core {

enum class TimelineKind : std::uint8_t {
  kHardwareInput,
  kSyntheticInput,
  kSuppressedInput,   // hardware input that failed the clickjacking check
  kDecision,          // a permission-monitor grant/deny
  kAlert,
  kPrompt,
};

std::string_view timeline_kind_name(TimelineKind kind) noexcept;

struct TimelineEntry {
  sim::Timestamp time;
  TimelineKind kind = TimelineKind::kHardwareInput;
  int pid = -1;
  std::string text;  // human-readable one-liner
};

// Build the merged, time-sorted timeline for a system's whole history.
std::vector<TimelineEntry> build_timeline(OverhaulSystem& sys);

// Render entries as aligned lines ("[ 12.503s] decision  pid=7 ...").
std::string render_timeline(const std::vector<TimelineEntry>& entries);

}  // namespace overhaul::core
