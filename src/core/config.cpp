#include "core/config.h"

namespace overhaul::core {
// Header-only; anchors the translation unit.
}  // namespace overhaul::core
