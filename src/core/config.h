// OverhaulConfig: one knob surface for the whole system.
//
// Collects every paper-relevant parameter in one place so benchmarks and
// ablations sweep a single struct:
//   δ (interaction threshold)       — §IV-B, default 2 s
//   shm re-arm wait                 — §IV-B, default 500 ms
//   clickjacking visibility window  — §IV-A, "predefined time threshold"
//   ptrace hardening                — §IV-B, default on
// `baseline()` disables every Overhaul mechanism, yielding the unmodified
// kernel + X server that Table I compares against.
#pragma once

#include <string>

#include "core/display_backend.h"
#include "kern/kernel.h"
#include "wl/compositor.h"
#include "x11/server.h"

namespace overhaul::core {

struct OverhaulConfig {
  bool enabled = true;

  // Which display server implementation core::OverhaulSystem boots behind
  // the core::DisplayBackend seam. Both enforce the same mediation model;
  // the cross-backend differential tests assert identical decision streams.
  DisplayBackendKind display_backend = DisplayBackendKind::kX11;

  sim::Duration delta = sim::Duration::seconds(2);
  sim::Duration shm_rearm_wait = sim::Duration::millis(500);
  sim::Duration visibility_threshold = sim::Duration::millis(500);
  bool ptrace_protect = true;
  bool audit = true;

  // Span/instant tracing (src/obs/). Metrics counters are always on — they
  // are single relaxed atomic adds — but span construction allocates strings,
  // so benchmarks turn tracing off the same way they turn the audit log off.
  bool trace = true;
  kern::MonitorMode monitor_mode = kern::MonitorMode::kEnforce;

  // Netlink interaction coalescing (DESIGN.md §10): collapse same-pid
  // notification bursts into one kernel crossing, flushed on pid change,
  // permission query, or after coalesce_skew of virtual time. Decision
  // streams are identical either way (property-tested), so this is purely a
  // throughput knob.
  bool netlink_coalesce = true;
  sim::Duration coalesce_skew = sim::Duration::millis(10);

  // Optional explicit-prompt mode (§IV-A): would-be denials raise an
  // unforgeable prompt instead of being silently blocked. Off by default —
  // the paper ships the capability but argues the transparent model is the
  // better trade-off (§VI).
  bool prompt_mode = false;

  // Grant policy: the paper's input-driven rule, or the ACG comparison
  // baseline (white-box, per-op gadgets, requires app modification).
  kern::GrantPolicy grant_policy = kern::GrantPolicy::kInputDriven;

  // The user's visual shared secret for alert authenticity (Fig. 5 uses a
  // cat photo; we use a string token).
  std::string shared_secret = "visual-secret:tabby-cat";
  sim::Duration alert_duration = sim::Duration::seconds(4);

  int screen_width = 1024;
  int screen_height = 768;

  // Multi-seat fleet sizing (src/fleet/, DESIGN.md §14). A single
  // OverhaulSystem always boots exactly one seat; fleet::FleetHarness reads
  // this to decide how many shards to boot when constructed from an
  // OverhaulConfig. Kept here so config files can say `fleet_shards 64`.
  int fleet_shards = 1;

  // Worker lanes for the fleet's parallel stepping engine (DESIGN.md §15).
  // 1 = serial; N > 1 steps shards on N lanes with a barrier per fleet
  // quantum. Bit-identical results either way (the equivalence property
  // test holds this), so config files can size it to the machine freely:
  // `fleet_threads 4`.
  int fleet_threads = 1;

  // Prepended to every metric this system's kernel registers — the fleet
  // harness boots shard k with "fleet.shard<k>." so shard registries roll
  // up without name collisions. Empty (no prefix) for single-seat boots.
  std::string metrics_prefix;

  // The unmodified system: no mediation, no propagation, no alerts.
  [[nodiscard]] static OverhaulConfig baseline() {
    OverhaulConfig cfg;
    cfg.enabled = false;
    return cfg;
  }

  // The paper's Table-I measurement configuration: full Overhaul code paths,
  // decisions forced to grant so benchmarks run without scripted users.
  [[nodiscard]] static OverhaulConfig grant_always() {
    OverhaulConfig cfg;
    cfg.monitor_mode = kern::MonitorMode::kGrantAlways;
    return cfg;
  }

  [[nodiscard]] kern::KernelConfig kernel_config() const {
    kern::KernelConfig kc;
    kc.overhaul_enabled = enabled;
    kc.grant_policy = grant_policy;
    kc.delta = delta;
    kc.shm_rearm_wait = shm_rearm_wait;
    kc.ptrace_protect = ptrace_protect;
    kc.audit = audit;
    kc.monitor_mode = monitor_mode;
    kc.netlink_coalesce = netlink_coalesce;
    kc.netlink_coalesce_skew = coalesce_skew;
    kc.metrics_prefix = metrics_prefix;
    return kc;
  }

  [[nodiscard]] x11::XServerConfig xserver_config() const {
    x11::XServerConfig xc;
    xc.overhaul_enabled = enabled;
    xc.visibility_threshold = visibility_threshold;
    xc.screen_width = screen_width;
    xc.screen_height = screen_height;
    return xc;
  }

  [[nodiscard]] wl::WlCompositorConfig compositor_config() const {
    wl::WlCompositorConfig wc;
    wc.overhaul_enabled = enabled;
    wc.visibility_threshold = visibility_threshold;
    wc.screen_width = screen_width;
    wc.screen_height = screen_height;
    return wc;
  }
};

}  // namespace overhaul::core
