#include "core/timeline.h"

#include <algorithm>
#include <cstdio>

namespace overhaul::core {

std::string_view timeline_kind_name(TimelineKind kind) noexcept {
  switch (kind) {
    case TimelineKind::kHardwareInput: return "input";
    case TimelineKind::kSyntheticInput: return "synthetic";
    case TimelineKind::kSuppressedInput: return "suppressed";
    case TimelineKind::kDecision: return "decision";
    case TimelineKind::kAlert: return "alert";
    case TimelineKind::kPrompt: return "prompt";
  }
  return "?";
}

namespace {

std::string_view event_name(x11::EventType type) noexcept {
  switch (type) {
    case x11::EventType::kKeyPress: return "key";
    case x11::EventType::kButtonPress: return "click";
    case x11::EventType::kSelectionRequest: return "selection-request";
    case x11::EventType::kSelectionNotify: return "selection-notify";
    case x11::EventType::kPropertyNotify: return "property-notify";
    case x11::EventType::kMapNotify: return "map-notify";
    case x11::EventType::kUnmapNotify: return "unmap-notify";
    case x11::EventType::kConfigureNotify: return "configure-notify";
  }
  return "?";
}

}  // namespace

std::vector<TimelineEntry> build_timeline(OverhaulSystem& sys) {
  std::vector<TimelineEntry> entries;

  // Input trace (key/button only — protocol events would drown the view).
  // Each backend keeps its own trace; the Wayland one has no synthetic
  // provenance because clients cannot inject input there at all.
  if (sys.display().backend_kind() == DisplayBackendKind::kWayland) {
    for (const auto& t : sys.compositor().input_trace()) {
      if (t.type != wl::WlEventType::kPointerButton &&
          t.type != wl::WlEventType::kKeyboardKey)
        continue;
      TimelineEntry e;
      e.time = t.time;
      e.kind = t.clickjack_suppressed ? TimelineKind::kSuppressedInput
                                      : TimelineKind::kHardwareInput;
      e.pid = t.receiver_pid;
      e.text = std::string(t.type == wl::WlEventType::kPointerButton
                               ? "click"
                               : "key") +
               " -> surface " + std::to_string(t.surface) +
               (t.produced_notification ? "  [N sent]" : "");
      entries.push_back(std::move(e));
    }
  } else {
    for (const auto& t : sys.xserver().input_trace()) {
      if (t.type != x11::EventType::kKeyPress &&
          t.type != x11::EventType::kButtonPress)
        continue;
      TimelineEntry e;
      e.time = t.time;
      if (t.provenance != x11::Provenance::kHardware) {
        e.kind = TimelineKind::kSyntheticInput;
      } else if (t.clickjack_suppressed) {
        e.kind = TimelineKind::kSuppressedInput;
      } else {
        e.kind = TimelineKind::kHardwareInput;
      }
      e.pid = t.receiver_pid;
      e.text = std::string(event_name(t.type)) + " -> window " +
               std::to_string(t.window) +
               (t.produced_notification ? "  [N sent]" : "");
      entries.push_back(std::move(e));
    }
  }

  for (const auto& rec : sys.audit().records()) {
    TimelineEntry e;
    e.time = sim::Timestamp{rec.time_ns};
    e.kind = TimelineKind::kDecision;
    e.pid = rec.pid;
    e.text = std::string(util::op_name(rec.op)) + " " +
             (rec.decision == util::Decision::kGrant ? "GRANT" : "DENY") +
             " (" + rec.comm + ", age " +
             (rec.interaction_age_ns < 0
                  ? "never"
                  : std::to_string(rec.interaction_age_ns / 1'000'000) + "ms") +
             ")";
    entries.push_back(std::move(e));
  }

  for (const auto& alert : sys.display().alert_overlay().history()) {
    TimelineEntry e;
    e.time = sim::Timestamp{alert.shown_at_ns};
    e.kind = TimelineKind::kAlert;
    e.pid = alert.pid;
    e.text = alert.text;
    entries.push_back(std::move(e));
  }

  if (sys.display().backend_kind() == DisplayBackendKind::kX11) {
    // Prompt mode is an X11-only surface; the Wayland backend ships only
    // the transparent model.
    for (const auto& prompt : sys.xserver().prompts().history()) {
      TimelineEntry e;
      e.time = sys.clock().now();  // prompts resolve synchronously "now"
      e.kind = TimelineKind::kPrompt;
      e.pid = prompt.pid;
      e.text = prompt.text + " -> " +
               (prompt.decided
                    ? (prompt.decision == util::Decision::kGrant ? "allowed"
                                                                 : "denied")
                    : "unanswered");
      entries.push_back(std::move(e));
    }
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     return a.time < b.time;
                   });
  return entries;
}

std::string render_timeline(const std::vector<TimelineEntry>& entries) {
  std::string out;
  char buf[512];
  for (const auto& e : entries) {
    std::snprintf(buf, sizeof(buf), "[%10.3fs] %-10s pid=%-5d %s\n",
                  e.time.to_seconds(),
                  std::string(timeline_kind_name(e.kind)).c_str(), e.pid,
                  e.text.c_str());
    out += buf;
  }
  return out;
}

}  // namespace overhaul::core
