// OverhaulSystem: a booted machine.
//
// Builds the virtual clock and scheduler, the kernel, the display server
// (X11 or Wayland, per `OverhaulConfig::display_backend`), the hardware
// input driver, installs the standard sensitive devices (microphone +
// camera), starts the trusted udev helper, and configures the alert
// overlay. This is the object every example, test scenario, and benchmark
// constructs — once with the default config for an Overhaul-protected
// machine, once with `OverhaulConfig::baseline()` for the unmodified
// machine.
//
// Both display servers implement the core::DisplayBackend seam, so code
// that only needs to launch apps, feed input, and read alerts goes through
// `display()`; backend-specific protocol surfaces (ICCCM selections, XTEST,
// wl_data_device, screencopy) live behind `xserver()` / `compositor()`,
// which are only valid on the matching backend.
#pragma once

#include <memory>
#include <string>

#include "core/config.h"
#include "core/display_backend.h"
#include "kern/kernel.h"
#include "obs/obs.h"
#include "sim/clock.h"
#include "sim/scheduler.h"
#include "wl/compositor.h"
#include "x11/input.h"
#include "x11/server.h"

namespace overhaul::core {

class OverhaulSystem {
 public:
  explicit OverhaulSystem(OverhaulConfig config = {});

  OverhaulSystem(const OverhaulSystem&) = delete;
  OverhaulSystem& operator=(const OverhaulSystem&) = delete;

  [[nodiscard]] const OverhaulConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Clock& clock() noexcept { return clock_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] kern::Kernel& kernel() noexcept { return *kernel_; }
  // The booted display server, backend-neutral.
  [[nodiscard]] DisplayBackend& display() noexcept { return *display_; }
  // Backend-specific accessors — only valid when the matching backend was
  // selected in the config (the other one was never constructed).
  [[nodiscard]] x11::XServer& xserver() noexcept { return *xserver_; }
  [[nodiscard]] wl::WlCompositor& compositor() noexcept { return *compositor_; }
  [[nodiscard]] HardwareInputDriver& input() noexcept { return *input_; }
  [[nodiscard]] audit::Sink& audit() noexcept { return kernel_->audit(); }
  [[nodiscard]] obs::Observability& obs() noexcept { return kernel_->obs(); }

  // --- standard devices ------------------------------------------------------
  [[nodiscard]] kern::DeviceId microphone() const noexcept { return mic_; }
  [[nodiscard]] kern::DeviceId camera() const noexcept { return cam_; }
  [[nodiscard]] static std::string mic_path() { return "/dev/snd/mic0"; }
  [[nodiscard]] static std::string camera_path() { return "/dev/video0"; }

  // --- convenience -------------------------------------------------------------
  // Advance virtual time (running any due scheduler events first).
  void advance(sim::Duration d) {
    scheduler_.run_until(clock_.now() + d);
  }

  // A launched GUI application: its process, display connection, and main
  // surface (an X window or a Wayland surface, depending on the backend).
  struct AppHandle {
    kern::Pid pid = kern::kNoPid;
    std::uint32_t client = 0;
    std::uint32_t window = 0;
  };

  // Spawn a process (child of `parent`, default init), connect it to the
  // display server, create + map a main surface. When `settle` is true the
  // clock is advanced past the clickjacking visibility threshold so the
  // surface is immediately eligible for interactions (i.e. "the app has
  // been on screen for a while").
  util::Result<AppHandle> launch_gui_app(const std::string& exe,
                                         const std::string& comm,
                                         display::Rect rect = {0, 0, 400, 300},
                                         bool settle = true,
                                         kern::Pid parent = 1);

  // Spawn a headless process (no display connection) — daemons, malware,
  // shells.
  util::Result<kern::Pid> launch_daemon(const std::string& exe,
                                        const std::string& comm,
                                        kern::Pid parent = 1);

 private:
  OverhaulConfig config_;
  sim::Clock clock_;
  sim::Scheduler scheduler_;
  std::unique_ptr<kern::Kernel> kernel_;
  std::unique_ptr<x11::XServer> xserver_;
  std::unique_ptr<wl::WlCompositor> compositor_;
  DisplayBackend* display_ = nullptr;  // whichever of the two was booted
  std::unique_ptr<HardwareInputDriver> input_;
  kern::DeviceId mic_ = kern::kNoDevice;
  kern::DeviceId cam_ = kern::kNoDevice;
};

}  // namespace overhaul::core
