// OverhaulSystem: a booted machine.
//
// Builds the virtual clock and scheduler, the kernel, the X server, the
// hardware input driver, installs the standard sensitive devices
// (microphone + camera), starts the trusted udev helper, and configures the
// alert overlay. This is the object every example, test scenario, and
// benchmark constructs — once with the default config for an
// Overhaul-protected machine, once with `OverhaulConfig::baseline()` for
// the unmodified machine.
#pragma once

#include <memory>
#include <string>

#include "core/config.h"
#include "kern/kernel.h"
#include "obs/obs.h"
#include "sim/clock.h"
#include "sim/scheduler.h"
#include "x11/input.h"
#include "x11/server.h"

namespace overhaul::core {

class OverhaulSystem {
 public:
  explicit OverhaulSystem(OverhaulConfig config = {});

  OverhaulSystem(const OverhaulSystem&) = delete;
  OverhaulSystem& operator=(const OverhaulSystem&) = delete;

  [[nodiscard]] const OverhaulConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Clock& clock() noexcept { return clock_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] kern::Kernel& kernel() noexcept { return *kernel_; }
  [[nodiscard]] x11::XServer& xserver() noexcept { return *xserver_; }
  [[nodiscard]] x11::HardwareInputDriver& input() noexcept { return *input_; }
  [[nodiscard]] util::AuditLog& audit() noexcept { return kernel_->audit(); }
  [[nodiscard]] obs::Observability& obs() noexcept { return kernel_->obs(); }

  // --- standard devices ------------------------------------------------------
  [[nodiscard]] kern::DeviceId microphone() const noexcept { return mic_; }
  [[nodiscard]] kern::DeviceId camera() const noexcept { return cam_; }
  [[nodiscard]] static std::string mic_path() { return "/dev/snd/mic0"; }
  [[nodiscard]] static std::string camera_path() { return "/dev/video0"; }

  // --- convenience -------------------------------------------------------------
  // Advance virtual time (running any due scheduler events first).
  void advance(sim::Duration d) {
    scheduler_.run_until(clock_.now() + d);
  }

  // A launched GUI application: its process, X connection, and main window.
  struct AppHandle {
    kern::Pid pid = kern::kNoPid;
    x11::ClientId client = 0;
    x11::WindowId window = x11::kNoWindow;
  };

  // Spawn a process (child of `parent`, default init), connect it to the X
  // server, create + map a main window. When `settle` is true the clock is
  // advanced past the clickjacking visibility threshold so the window is
  // immediately eligible for interactions (i.e. "the app has been on screen
  // for a while").
  util::Result<AppHandle> launch_gui_app(const std::string& exe,
                                         const std::string& comm,
                                         x11::Rect rect = {0, 0, 400, 300},
                                         bool settle = true,
                                         kern::Pid parent = 1);

  // Spawn a headless process (no X connection) — daemons, malware, shells.
  util::Result<kern::Pid> launch_daemon(const std::string& exe,
                                        const std::string& comm,
                                        kern::Pid parent = 1);

 private:
  OverhaulConfig config_;
  sim::Clock clock_;
  sim::Scheduler scheduler_;
  std::unique_ptr<kern::Kernel> kernel_;
  std::unique_ptr<x11::XServer> xserver_;
  std::unique_ptr<x11::HardwareInputDriver> input_;
  kern::DeviceId mic_ = kern::kNoDevice;
  kern::DeviceId cam_ = kern::kNoDevice;
};

}  // namespace overhaul::core
