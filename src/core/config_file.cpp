#include "core/config_file.h"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace overhaul::core {

using util::Code;
using util::Result;
using util::Status;

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

Result<bool> parse_bool(const std::string& v, int line_no) {
  if (v == "true" || v == "1" || v == "on") return true;
  if (v == "false" || v == "0" || v == "off") return false;
  return Status(Code::kInvalidArgument,
                "line " + std::to_string(line_no) + ": expected boolean, got '" +
                    v + "'");
}

Result<std::int64_t> parse_ms(const std::string& v, int line_no) {
  std::int64_t ms = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), ms);
  if (ec != std::errc{} || ptr != v.data() + v.size() || ms <= 0)
    return Status(Code::kInvalidArgument,
                  "line " + std::to_string(line_no) +
                      ": expected positive milliseconds, got '" + v + "'");
  return ms;
}

}  // namespace

Result<OverhaulConfig> parse_config(const std::string& text) {
  OverhaulConfig cfg;
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments, then whitespace.
    const auto hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      return Status(Code::kInvalidArgument,
                    "line " + std::to_string(line_no) + ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (key == "enabled") {
      auto b = parse_bool(value, line_no);
      if (!b.is_ok()) return b.status();
      cfg.enabled = b.value();
    } else if (key == "display_backend") {
      if (value == "x11") {
        cfg.display_backend = DisplayBackendKind::kX11;
      } else if (value == "wayland") {
        cfg.display_backend = DisplayBackendKind::kWayland;
      } else {
        return Status(Code::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": display_backend must be x11 or wayland");
      }
    } else if (key == "delta_ms") {
      auto ms = parse_ms(value, line_no);
      if (!ms.is_ok()) return ms.status();
      cfg.delta = sim::Duration::millis(ms.value());
    } else if (key == "shm_rearm_wait_ms") {
      auto ms = parse_ms(value, line_no);
      if (!ms.is_ok()) return ms.status();
      cfg.shm_rearm_wait = sim::Duration::millis(ms.value());
    } else if (key == "visibility_threshold_ms") {
      auto ms = parse_ms(value, line_no);
      if (!ms.is_ok()) return ms.status();
      cfg.visibility_threshold = sim::Duration::millis(ms.value());
    } else if (key == "alert_duration_ms") {
      auto ms = parse_ms(value, line_no);
      if (!ms.is_ok()) return ms.status();
      cfg.alert_duration = sim::Duration::millis(ms.value());
    } else if (key == "ptrace_protect") {
      auto b = parse_bool(value, line_no);
      if (!b.is_ok()) return b.status();
      cfg.ptrace_protect = b.value();
    } else if (key == "audit") {
      auto b = parse_bool(value, line_no);
      if (!b.is_ok()) return b.status();
      cfg.audit = b.value();
    } else if (key == "prompt_mode") {
      auto b = parse_bool(value, line_no);
      if (!b.is_ok()) return b.status();
      cfg.prompt_mode = b.value();
    } else if (key == "grant_policy") {
      if (value == "input-driven") {
        cfg.grant_policy = kern::GrantPolicy::kInputDriven;
      } else if (value == "acg") {
        cfg.grant_policy = kern::GrantPolicy::kAcg;
      } else {
        return Status(Code::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": grant_policy must be input-driven or acg");
      }
    } else if (key == "shared_secret") {
      if (value.empty())
        return Status(Code::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": shared_secret must not be empty");
      cfg.shared_secret = value;
    } else if (key == "fleet_shards") {
      int n = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc{} || ptr != value.data() + value.size() || n < 1)
        return Status(Code::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": fleet_shards must be a positive integer, got '" +
                          value + "'");
      cfg.fleet_shards = n;
    } else if (key == "fleet_threads") {
      int n = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc{} || ptr != value.data() + value.size() || n < 1)
        return Status(Code::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": fleet_threads must be a positive integer, got '" +
                          value + "'");
      cfg.fleet_threads = n;
    } else if (key == "screen") {
      int w = 0, h = 0;
      if (std::sscanf(value.c_str(), "%dx%d", &w, &h) != 2 || w <= 0 || h <= 0)
        return Status(Code::kInvalidArgument,
                      "line " + std::to_string(line_no) +
                          ": expected WIDTHxHEIGHT, got '" + value + "'");
      cfg.screen_width = w;
      cfg.screen_height = h;
    } else {
      return Status(Code::kInvalidArgument,
                    "line " + std::to_string(line_no) + ": unknown key '" +
                        key + "'");
    }
  }

  // Cross-field validation: the paper's constraint that the shm wait must
  // be "sufficiently shorter" than δ.
  if (cfg.shm_rearm_wait.ns >= cfg.delta.ns)
    return Status(Code::kInvalidArgument,
                  "shm_rearm_wait_ms must be shorter than delta_ms "
                  "(the wait-list window would swallow the whole grant "
                  "window; see paper §IV-B)");
  return cfg;
}

std::string render_config(const OverhaulConfig& config) {
  std::ostringstream out;
  out << "enabled = " << (config.enabled ? "true" : "false") << "\n"
      << "display_backend = " << display_backend_name(config.display_backend)
      << "\n"
      << "delta_ms = " << config.delta.ns / 1'000'000 << "\n"
      << "shm_rearm_wait_ms = " << config.shm_rearm_wait.ns / 1'000'000 << "\n"
      << "visibility_threshold_ms = "
      << config.visibility_threshold.ns / 1'000'000 << "\n"
      << "alert_duration_ms = " << config.alert_duration.ns / 1'000'000 << "\n"
      << "ptrace_protect = " << (config.ptrace_protect ? "true" : "false")
      << "\n"
      << "audit = " << (config.audit ? "true" : "false") << "\n"
      << "prompt_mode = " << (config.prompt_mode ? "true" : "false") << "\n"
      << "grant_policy = "
      << (config.grant_policy == kern::GrantPolicy::kAcg ? "acg"
                                                         : "input-driven")
      << "\n"
      << "shared_secret = " << config.shared_secret << "\n"
      << "fleet_shards = " << config.fleet_shards << "\n"
      << "fleet_threads = " << config.fleet_threads << "\n"
      << "screen = " << config.screen_width << "x" << config.screen_height
      << "\n";
  return out.str();
}

}  // namespace overhaul::core
