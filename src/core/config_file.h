// Config-file parsing: the /etc/overhaul.conf an administrator would ship.
//
// Simple `key = value` lines, '#' comments, whitespace-tolerant. Unknown
// keys and malformed values are hard errors — a typo in a security config
// must not silently fall back to defaults.
//
//   enabled = true
//   delta_ms = 2000
//   shm_rearm_wait_ms = 500
//   visibility_threshold_ms = 500
//   ptrace_protect = true
//   audit = true
//   prompt_mode = false
//   grant_policy = input-driven   # or: acg
//   shared_secret = visual-secret:tabby-cat
//   alert_duration_ms = 4000
//   screen = 1024x768
#pragma once

#include <string>

#include "core/config.h"
#include "util/status.h"

namespace overhaul::core {

// Parse a config file's contents into an OverhaulConfig. On error, the
// status message names the offending line.
util::Result<OverhaulConfig> parse_config(const std::string& text);

// Render a config back to the file format (round-trips through parse).
std::string render_config(const OverhaulConfig& config);

}  // namespace overhaul::core
