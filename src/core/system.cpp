#include "core/system.h"

namespace overhaul::core {

using kern::Pid;
using util::Code;
using util::Result;
using util::Status;

OverhaulSystem::OverhaulSystem(OverhaulConfig config)
    : config_(std::move(config)), scheduler_(clock_) {
  kernel_ = std::make_unique<kern::Kernel>(clock_, config_.kernel_config());
  kernel_->obs().tracer.set_enabled(config_.trace);
  scheduler_.set_depth_observer(
      [gauge = kernel_->obs().metrics.gauge("sim.scheduler.depth")](
          std::size_t depth) { gauge->record(depth); });

  // Boot order mirrors a real machine: devices appear, udev maps them, then
  // the display server starts and connects its netlink channel.
  auto mic = kernel_->install_device(kern::DeviceClass::kMicrophone,
                                     "HDA Intel capture", mic_path());
  auto cam = kernel_->install_device(kern::DeviceClass::kCamera,
                                     "UVC webcam", camera_path());
  mic_ = mic.is_ok() ? mic.value() : kern::kNoDevice;
  cam_ = cam.is_ok() ? cam.value() : kern::kNoDevice;
  // A harmless device for negative tests.
  (void)kernel_->install_device(kern::DeviceClass::kHarmless, "null",
                                "/dev/null");

  if (config_.enabled) {
    // The trusted helper performs its coldplug pass here, mapping the
    // sensitive nodes into the kernel's mediation table.
    (void)kernel_->start_udev_helper();
  }

  if (config_.display_backend == DisplayBackendKind::kWayland) {
    compositor_ = std::make_unique<wl::WlCompositor>(
        *kernel_, config_.compositor_config());
    display_ = compositor_.get();
  } else {
    xserver_ =
        std::make_unique<x11::XServer>(*kernel_, config_.xserver_config());
    display_ = xserver_.get();
  }
  display_->alert_overlay().set_shared_secret(config_.shared_secret);
  display_->alert_overlay().set_display_duration(config_.alert_duration);
  input_ = std::make_unique<HardwareInputDriver>(*display_);

  // Prompt mode rides on the X11 prompt strip; the Wayland backend ships
  // only the transparent model (the paper's preferred configuration).
  if (config_.enabled && config_.prompt_mode && xserver_ != nullptr) {
    // Route would-be denials through the unforgeable prompt (§IV-A).
    kernel_->monitor().set_prompt_handler(
        [this](kern::Pid pid, util::Op op) {
          const kern::TaskStruct* task = kernel_->processes().lookup(pid);
          return xserver_->prompts().ask(
              pid, task != nullptr ? task->comm : "?", op);
        });
  }
}

namespace {
// Desktop applications run with the logged-in user's privileges — the
// paper's threat model ("malicious code can execute with the privileges of
// the user", §II), never root.
constexpr kern::Uid kDesktopUid = 1000;
}  // namespace

Result<OverhaulSystem::AppHandle> OverhaulSystem::launch_gui_app(
    const std::string& exe, const std::string& comm, display::Rect rect,
    bool settle, Pid parent) {
  auto pid = kernel_->sys_spawn(parent, exe, comm);
  if (!pid.is_ok()) return pid.status();
  if (auto* task = kernel_->processes().lookup(pid.value());
      task != nullptr && task->uid == kern::kRootUid) {
    task->uid = kDesktopUid;
  }

  auto client = display_->attach_client(pid.value());
  if (!client.is_ok()) return client.status();

  auto window = display_->open_surface(client.value(), rect);
  if (!window.is_ok()) return window.status();
  if (auto s = display_->show_surface(client.value(), window.value());
      !s.is_ok())
    return s;

  if (settle) {
    // Let the window pass the clickjacking visibility threshold, as a window
    // that has been on screen for a while would have.
    advance(config_.visibility_threshold + sim::Duration::millis(1));
  }

  return AppHandle{pid.value(), client.value(), window.value()};
}

Result<Pid> OverhaulSystem::launch_daemon(const std::string& exe,
                                          const std::string& comm,
                                          Pid parent) {
  auto pid = kernel_->sys_spawn(parent, exe, comm);
  if (!pid.is_ok()) return pid;
  if (auto* task = kernel_->processes().lookup(pid.value());
      task != nullptr && task->uid == kern::kRootUid) {
    task->uid = kDesktopUid;
  }
  return pid;
}

}  // namespace overhaul::core
