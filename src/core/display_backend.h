// DisplayBackend: the backend-neutral seam between the core system / app
// models and a concrete display server.
//
// Overhaul's mechanism (§IV-A) is display-server-cooperative but not
// X11-specific: any compositor that (a) forwards authentic-input
// notifications over the authenticated netlink channel, (b) routes
// clipboard/capture requests through the kernel permission monitor, and
// (c) hosts the trusted alert overlay reproduces the paper's policy. This
// interface captures exactly those three responsibilities plus the minimal
// surface lifecycle the scripted apps need, so x11::XServer and
// wl::WlCompositor are interchangeable behind core::OverhaulSystem — which
// is what makes the cross-backend differential oracle
// (tests/integration/backend_diff_test.cpp) possible.
//
// Vocabulary mapping:
//            seam              X11                 Wayland
//   attach_client        connect_client       WlCompositor::connect_client
//   open_surface         create_window        create_surface (xdg_toplevel)
//   show_surface         map_window           map_surface (configure+commit)
//   hardware_*_press     trusted input path   wl_seat serial-minting path
//   ask_monitor          ask_monitor          ask_monitor
//   alert_overlay        overlay window       layer-shell overlay surface
#pragma once

#include <cstdint>
#include <string_view>

#include "display/alert.h"
#include "display/types.h"
#include "kern/task.h"
#include "util/audit_log.h"
#include "util/status.h"

namespace overhaul::core {

enum class DisplayBackendKind : std::uint8_t { kX11, kWayland };

[[nodiscard]] constexpr std::string_view display_backend_name(
    DisplayBackendKind kind) noexcept {
  return kind == DisplayBackendKind::kX11 ? "x11" : "wayland";
}

class DisplayBackend {
 public:
  virtual ~DisplayBackend() = default;

  [[nodiscard]] virtual DisplayBackendKind backend_kind() const noexcept = 0;
  // The display server's own process (the authenticated netlink peer).
  [[nodiscard]] virtual kern::Pid server_pid() const noexcept = 0;

  // --- trusted input path ----------------------------------------------------
  // Only the HardwareInputDriver below reaches these; everything a client
  // can reach (SendEvent/XTEST on X11, serial-carrying requests on Wayland)
  // is tagged or validated so it can never mint interaction records.
  virtual void hardware_button_press(int x, int y, int button) = 0;
  virtual void hardware_key_press(int keycode) = 0;

  // --- client + surface lifecycle -------------------------------------------
  // The pid is the kernel-verified socket peer; clients cannot forge it.
  virtual util::Result<std::uint32_t> attach_client(kern::Pid pid) = 0;
  virtual util::Result<std::uint32_t> open_surface(std::uint32_t client,
                                                   display::Rect rect) = 0;
  virtual util::Status show_surface(std::uint32_t client,
                                    std::uint32_t surface) = 0;
  virtual util::Result<display::Rect> surface_rect(std::uint32_t surface) = 0;

  // --- monitor query hook ----------------------------------------------------
  // Ask the kernel permission monitor about `op` for the process behind
  // `client`. Grant-by-default when Overhaul is disabled (baseline).
  virtual util::Decision ask_monitor(std::uint32_t client, util::Op op,
                                     std::string_view detail) = 0;

  // --- trusted output --------------------------------------------------------
  virtual display::AlertOverlay& alert_overlay() noexcept = 0;
};

// HardwareInputDriver: the device-driver side of the trusted input path.
//
// In the paper's model, "user inputs that originate from hardware attached
// to the system should be considered authentic" (§IV-A). This driver is the
// only source of hardware-provenance events — simulated applications have
// no handle to it; scenario harnesses (the "user") do. It drives whichever
// backend the system booted.
class HardwareInputDriver {
 public:
  explicit HardwareInputDriver(DisplayBackend& backend) : backend_(backend) {}

  // A physical mouse click at screen coordinates.
  void click(int x, int y, int button = 1) {
    backend_.hardware_button_press(x, y, button);
  }

  // A physical key press delivered to the focused window.
  void key(int keycode) { backend_.hardware_key_press(keycode); }

  // Convenience for common chords used in scenarios.
  static constexpr int kKeyCtrlC = 1001;  // copy chord
  static constexpr int kKeyCtrlV = 1002;  // paste chord
  static constexpr int kKeyEnter = 1003;
  static constexpr int kKeyPrintScreen = 1004;

  void press_copy_chord() { key(kKeyCtrlC); }
  void press_paste_chord() { key(kKeyCtrlV); }
  void press_enter() { key(kKeyEnter); }

 private:
  DisplayBackend& backend_;
};

}  // namespace overhaul::core
