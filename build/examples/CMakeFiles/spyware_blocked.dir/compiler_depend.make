# Empty compiler generated dependencies file for spyware_blocked.
# This may be replaced when dependencies are built.
