file(REMOVE_RECURSE
  "CMakeFiles/spyware_blocked.dir/spyware_blocked.cpp.o"
  "CMakeFiles/spyware_blocked.dir/spyware_blocked.cpp.o.d"
  "spyware_blocked"
  "spyware_blocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spyware_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
