# Empty dependencies file for overhaulctl.
# This may be replaced when dependencies are built.
