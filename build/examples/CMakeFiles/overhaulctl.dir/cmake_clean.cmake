file(REMOVE_RECURSE
  "CMakeFiles/overhaulctl.dir/overhaulctl.cpp.o"
  "CMakeFiles/overhaulctl.dir/overhaulctl.cpp.o.d"
  "overhaulctl"
  "overhaulctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhaulctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
