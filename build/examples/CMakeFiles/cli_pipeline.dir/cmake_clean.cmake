file(REMOVE_RECURSE
  "CMakeFiles/cli_pipeline.dir/cli_pipeline.cpp.o"
  "CMakeFiles/cli_pipeline.dir/cli_pipeline.cpp.o.d"
  "cli_pipeline"
  "cli_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
