# Empty compiler generated dependencies file for cli_pipeline.
# This may be replaced when dependencies are built.
