file(REMOVE_RECURSE
  "CMakeFiles/browser_videoconf.dir/browser_videoconf.cpp.o"
  "CMakeFiles/browser_videoconf.dir/browser_videoconf.cpp.o.d"
  "browser_videoconf"
  "browser_videoconf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_videoconf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
