# Empty dependencies file for browser_videoconf.
# This may be replaced when dependencies are built.
