# Empty dependencies file for clipboard_attack.
# This may be replaced when dependencies are built.
