file(REMOVE_RECURSE
  "CMakeFiles/clipboard_attack.dir/clipboard_attack.cpp.o"
  "CMakeFiles/clipboard_attack.dir/clipboard_attack.cpp.o.d"
  "clipboard_attack"
  "clipboard_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clipboard_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
