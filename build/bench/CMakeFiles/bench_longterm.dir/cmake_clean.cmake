file(REMOVE_RECURSE
  "CMakeFiles/bench_longterm.dir/bench_longterm.cpp.o"
  "CMakeFiles/bench_longterm.dir/bench_longterm.cpp.o.d"
  "bench_longterm"
  "bench_longterm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_longterm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
