# Empty dependencies file for bench_longterm.
# This may be replaced when dependencies are built.
