file(REMOVE_RECURSE
  "CMakeFiles/bench_usability.dir/bench_usability.cpp.o"
  "CMakeFiles/bench_usability.dir/bench_usability.cpp.o.d"
  "bench_usability"
  "bench_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
