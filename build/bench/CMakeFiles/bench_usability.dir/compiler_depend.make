# Empty compiler generated dependencies file for bench_usability.
# This may be replaced when dependencies are built.
