file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shmwait.dir/bench_ablation_shmwait.cpp.o"
  "CMakeFiles/bench_ablation_shmwait.dir/bench_ablation_shmwait.cpp.o.d"
  "bench_ablation_shmwait"
  "bench_ablation_shmwait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shmwait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
