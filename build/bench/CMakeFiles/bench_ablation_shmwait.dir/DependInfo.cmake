
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_shmwait.cpp" "bench/CMakeFiles/bench_ablation_shmwait.dir/bench_ablation_shmwait.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_shmwait.dir/bench_ablation_shmwait.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/overhaul_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_x11.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
