# Empty compiler generated dependencies file for bench_ablation_shmwait.
# This may be replaced when dependencies are built.
