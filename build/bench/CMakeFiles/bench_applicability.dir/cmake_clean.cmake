file(REMOVE_RECURSE
  "CMakeFiles/bench_applicability.dir/bench_applicability.cpp.o"
  "CMakeFiles/bench_applicability.dir/bench_applicability.cpp.o.d"
  "bench_applicability"
  "bench_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
