# Empty dependencies file for bench_applicability.
# This may be replaced when dependencies are built.
