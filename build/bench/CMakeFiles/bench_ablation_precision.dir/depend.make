# Empty dependencies file for bench_ablation_precision.
# This may be replaced when dependencies are built.
