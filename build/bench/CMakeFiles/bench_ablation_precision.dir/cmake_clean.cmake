file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_precision.dir/bench_ablation_precision.cpp.o"
  "CMakeFiles/bench_ablation_precision.dir/bench_ablation_precision.cpp.o.d"
  "bench_ablation_precision"
  "bench_ablation_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
