file(REMOVE_RECURSE
  "CMakeFiles/bench_security_scorecard.dir/bench_security_scorecard.cpp.o"
  "CMakeFiles/bench_security_scorecard.dir/bench_security_scorecard.cpp.o.d"
  "bench_security_scorecard"
  "bench_security_scorecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
