# Empty dependencies file for bench_security_scorecard.
# This may be replaced when dependencies are built.
