# Empty dependencies file for bench_ablation_delta.
# This may be replaced when dependencies are built.
