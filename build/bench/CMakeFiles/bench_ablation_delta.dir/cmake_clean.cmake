file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_delta.dir/bench_ablation_delta.cpp.o"
  "CMakeFiles/bench_ablation_delta.dir/bench_ablation_delta.cpp.o.d"
  "bench_ablation_delta"
  "bench_ablation_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
