file(REMOVE_RECURSE
  "liboverhaul_core.a"
)
