file(REMOVE_RECURSE
  "CMakeFiles/overhaul_core.dir/core/config.cpp.o"
  "CMakeFiles/overhaul_core.dir/core/config.cpp.o.d"
  "CMakeFiles/overhaul_core.dir/core/config_file.cpp.o"
  "CMakeFiles/overhaul_core.dir/core/config_file.cpp.o.d"
  "CMakeFiles/overhaul_core.dir/core/system.cpp.o"
  "CMakeFiles/overhaul_core.dir/core/system.cpp.o.d"
  "CMakeFiles/overhaul_core.dir/core/timeline.cpp.o"
  "CMakeFiles/overhaul_core.dir/core/timeline.cpp.o.d"
  "liboverhaul_core.a"
  "liboverhaul_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhaul_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
