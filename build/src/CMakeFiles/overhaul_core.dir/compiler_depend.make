# Empty compiler generated dependencies file for overhaul_core.
# This may be replaced when dependencies are built.
