file(REMOVE_RECURSE
  "CMakeFiles/overhaul_x11.dir/x11/acg.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/acg.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/alert.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/alert.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/client.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/client.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/input.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/input.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/prompt.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/prompt.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/screen.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/screen.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/selection.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/selection.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/server.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/server.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/window.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/window.cpp.o.d"
  "CMakeFiles/overhaul_x11.dir/x11/wire.cpp.o"
  "CMakeFiles/overhaul_x11.dir/x11/wire.cpp.o.d"
  "liboverhaul_x11.a"
  "liboverhaul_x11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhaul_x11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
