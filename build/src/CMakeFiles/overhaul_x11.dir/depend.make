# Empty dependencies file for overhaul_x11.
# This may be replaced when dependencies are built.
