file(REMOVE_RECURSE
  "liboverhaul_x11.a"
)
