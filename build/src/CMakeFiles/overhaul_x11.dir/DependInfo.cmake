
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x11/acg.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/acg.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/acg.cpp.o.d"
  "/root/repo/src/x11/alert.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/alert.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/alert.cpp.o.d"
  "/root/repo/src/x11/client.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/client.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/client.cpp.o.d"
  "/root/repo/src/x11/input.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/input.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/input.cpp.o.d"
  "/root/repo/src/x11/prompt.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/prompt.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/prompt.cpp.o.d"
  "/root/repo/src/x11/screen.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/screen.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/screen.cpp.o.d"
  "/root/repo/src/x11/selection.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/selection.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/selection.cpp.o.d"
  "/root/repo/src/x11/server.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/server.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/server.cpp.o.d"
  "/root/repo/src/x11/window.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/window.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/window.cpp.o.d"
  "/root/repo/src/x11/wire.cpp" "src/CMakeFiles/overhaul_x11.dir/x11/wire.cpp.o" "gcc" "src/CMakeFiles/overhaul_x11.dir/x11/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/overhaul_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
