# Empty compiler generated dependencies file for overhaul_kern.
# This may be replaced when dependencies are built.
