
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/devices.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/devices.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/devices.cpp.o.d"
  "/root/repo/src/kern/ipc/fifo.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/fifo.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/fifo.cpp.o.d"
  "/root/repo/src/kern/ipc/ipc_object.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/ipc_object.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/ipc_object.cpp.o.d"
  "/root/repo/src/kern/ipc/msg_queue.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/msg_queue.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/msg_queue.cpp.o.d"
  "/root/repo/src/kern/ipc/page_fault.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/page_fault.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/page_fault.cpp.o.d"
  "/root/repo/src/kern/ipc/pipe.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/pipe.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/pipe.cpp.o.d"
  "/root/repo/src/kern/ipc/shared_memory.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/shared_memory.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/shared_memory.cpp.o.d"
  "/root/repo/src/kern/ipc/unix_socket.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/unix_socket.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ipc/unix_socket.cpp.o.d"
  "/root/repo/src/kern/kernel.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/kernel.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/kernel.cpp.o.d"
  "/root/repo/src/kern/netlink.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/netlink.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/netlink.cpp.o.d"
  "/root/repo/src/kern/permission_monitor.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/permission_monitor.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/permission_monitor.cpp.o.d"
  "/root/repo/src/kern/process_table.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/process_table.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/process_table.cpp.o.d"
  "/root/repo/src/kern/procfs.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/procfs.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/procfs.cpp.o.d"
  "/root/repo/src/kern/ptrace.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/ptrace.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/ptrace.cpp.o.d"
  "/root/repo/src/kern/pty.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/pty.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/pty.cpp.o.d"
  "/root/repo/src/kern/signals.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/signals.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/signals.cpp.o.d"
  "/root/repo/src/kern/task.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/task.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/task.cpp.o.d"
  "/root/repo/src/kern/udev.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/udev.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/udev.cpp.o.d"
  "/root/repo/src/kern/vfs.cpp" "src/CMakeFiles/overhaul_kern.dir/kern/vfs.cpp.o" "gcc" "src/CMakeFiles/overhaul_kern.dir/kern/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/overhaul_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
