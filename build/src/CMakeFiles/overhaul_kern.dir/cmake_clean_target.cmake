file(REMOVE_RECURSE
  "liboverhaul_kern.a"
)
