# Empty dependencies file for overhaul_apps.
# This may be replaced when dependencies are built.
