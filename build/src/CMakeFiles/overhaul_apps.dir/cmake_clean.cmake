file(REMOVE_RECURSE
  "CMakeFiles/overhaul_apps.dir/apps/browser.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/browser.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/catalog.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/catalog.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/dbus.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/dbus.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/launcher.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/launcher.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/malware_corpus.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/malware_corpus.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/password_manager.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/password_manager.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/runtime.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/runtime.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/screenshot.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/screenshot.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/session.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/session.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/spyware.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/spyware.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/terminal.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/terminal.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/user_model.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/user_model.cpp.o.d"
  "CMakeFiles/overhaul_apps.dir/apps/video_conf.cpp.o"
  "CMakeFiles/overhaul_apps.dir/apps/video_conf.cpp.o.d"
  "liboverhaul_apps.a"
  "liboverhaul_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhaul_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
