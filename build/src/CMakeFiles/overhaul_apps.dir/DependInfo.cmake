
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/browser.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/browser.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/browser.cpp.o.d"
  "/root/repo/src/apps/catalog.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/catalog.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/catalog.cpp.o.d"
  "/root/repo/src/apps/dbus.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/dbus.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/dbus.cpp.o.d"
  "/root/repo/src/apps/launcher.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/launcher.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/launcher.cpp.o.d"
  "/root/repo/src/apps/malware_corpus.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/malware_corpus.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/malware_corpus.cpp.o.d"
  "/root/repo/src/apps/password_manager.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/password_manager.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/password_manager.cpp.o.d"
  "/root/repo/src/apps/runtime.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/runtime.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/runtime.cpp.o.d"
  "/root/repo/src/apps/screenshot.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/screenshot.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/screenshot.cpp.o.d"
  "/root/repo/src/apps/session.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/session.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/session.cpp.o.d"
  "/root/repo/src/apps/spyware.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/spyware.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/spyware.cpp.o.d"
  "/root/repo/src/apps/terminal.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/terminal.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/terminal.cpp.o.d"
  "/root/repo/src/apps/user_model.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/user_model.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/user_model.cpp.o.d"
  "/root/repo/src/apps/video_conf.cpp" "src/CMakeFiles/overhaul_apps.dir/apps/video_conf.cpp.o" "gcc" "src/CMakeFiles/overhaul_apps.dir/apps/video_conf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/overhaul_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_x11.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
