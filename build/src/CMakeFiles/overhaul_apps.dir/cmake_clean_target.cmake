file(REMOVE_RECURSE
  "liboverhaul_apps.a"
)
