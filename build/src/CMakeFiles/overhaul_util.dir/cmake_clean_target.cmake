file(REMOVE_RECURSE
  "liboverhaul_util.a"
)
