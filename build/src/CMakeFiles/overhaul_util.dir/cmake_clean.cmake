file(REMOVE_RECURSE
  "CMakeFiles/overhaul_util.dir/util/ascii_chart.cpp.o"
  "CMakeFiles/overhaul_util.dir/util/ascii_chart.cpp.o.d"
  "CMakeFiles/overhaul_util.dir/util/audit_log.cpp.o"
  "CMakeFiles/overhaul_util.dir/util/audit_log.cpp.o.d"
  "CMakeFiles/overhaul_util.dir/util/audit_report.cpp.o"
  "CMakeFiles/overhaul_util.dir/util/audit_report.cpp.o.d"
  "CMakeFiles/overhaul_util.dir/util/histogram.cpp.o"
  "CMakeFiles/overhaul_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/overhaul_util.dir/util/rng.cpp.o"
  "CMakeFiles/overhaul_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/overhaul_util.dir/util/status.cpp.o"
  "CMakeFiles/overhaul_util.dir/util/status.cpp.o.d"
  "liboverhaul_util.a"
  "liboverhaul_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhaul_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
