# Empty dependencies file for overhaul_util.
# This may be replaced when dependencies are built.
