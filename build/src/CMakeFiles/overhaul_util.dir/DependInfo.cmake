
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_chart.cpp" "src/CMakeFiles/overhaul_util.dir/util/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/overhaul_util.dir/util/ascii_chart.cpp.o.d"
  "/root/repo/src/util/audit_log.cpp" "src/CMakeFiles/overhaul_util.dir/util/audit_log.cpp.o" "gcc" "src/CMakeFiles/overhaul_util.dir/util/audit_log.cpp.o.d"
  "/root/repo/src/util/audit_report.cpp" "src/CMakeFiles/overhaul_util.dir/util/audit_report.cpp.o" "gcc" "src/CMakeFiles/overhaul_util.dir/util/audit_report.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/overhaul_util.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/overhaul_util.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/overhaul_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/overhaul_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/overhaul_util.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/overhaul_util.dir/util/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
