file(REMOVE_RECURSE
  "CMakeFiles/overhaul_sim.dir/sim/clock.cpp.o"
  "CMakeFiles/overhaul_sim.dir/sim/clock.cpp.o.d"
  "CMakeFiles/overhaul_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/overhaul_sim.dir/sim/scheduler.cpp.o.d"
  "liboverhaul_sim.a"
  "liboverhaul_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhaul_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
