# Empty compiler generated dependencies file for overhaul_sim.
# This may be replaced when dependencies are built.
