file(REMOVE_RECURSE
  "liboverhaul_sim.a"
)
