# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kern_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/x11_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
