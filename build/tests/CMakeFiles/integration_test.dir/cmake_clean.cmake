file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/catalog_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/catalog_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/cli_pty_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/cli_pty_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/dbus_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/dbus_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fault_injection_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fault_injection_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fig1_hardware_device_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fig1_hardware_device_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fig2_clipboard_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fig2_clipboard_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fig3_launcher_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fig3_launcher_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fig4_browser_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fig4_browser_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fig6_icccm_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fig6_icccm_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/session_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/session_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/spyware_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/spyware_test.cpp.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
