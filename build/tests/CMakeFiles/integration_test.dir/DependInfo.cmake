
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/catalog_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/catalog_test.cpp.o.d"
  "/root/repo/tests/integration/cli_pty_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/cli_pty_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/cli_pty_test.cpp.o.d"
  "/root/repo/tests/integration/dbus_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/dbus_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/dbus_test.cpp.o.d"
  "/root/repo/tests/integration/fault_injection_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fault_injection_test.cpp.o.d"
  "/root/repo/tests/integration/fig1_hardware_device_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fig1_hardware_device_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fig1_hardware_device_test.cpp.o.d"
  "/root/repo/tests/integration/fig2_clipboard_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fig2_clipboard_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fig2_clipboard_test.cpp.o.d"
  "/root/repo/tests/integration/fig3_launcher_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fig3_launcher_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fig3_launcher_test.cpp.o.d"
  "/root/repo/tests/integration/fig4_browser_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fig4_browser_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fig4_browser_test.cpp.o.d"
  "/root/repo/tests/integration/fig6_icccm_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fig6_icccm_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fig6_icccm_test.cpp.o.d"
  "/root/repo/tests/integration/session_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/session_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/session_test.cpp.o.d"
  "/root/repo/tests/integration/spyware_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/spyware_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/spyware_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/overhaul_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_x11.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
