file(REMOVE_RECURSE
  "CMakeFiles/x11_test.dir/x11/acg_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/acg_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/alert_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/alert_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/event_mask_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/event_mask_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/grab_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/grab_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/incr_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/incr_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/input_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/input_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/prompt_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/prompt_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/screen_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/screen_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/selection_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/selection_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/window_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/window_test.cpp.o.d"
  "CMakeFiles/x11_test.dir/x11/wire_test.cpp.o"
  "CMakeFiles/x11_test.dir/x11/wire_test.cpp.o.d"
  "x11_test"
  "x11_test.pdb"
  "x11_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x11_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
