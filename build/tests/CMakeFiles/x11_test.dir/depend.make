# Empty dependencies file for x11_test.
# This may be replaced when dependencies are built.
