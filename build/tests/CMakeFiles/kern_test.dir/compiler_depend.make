# Empty compiler generated dependencies file for kern_test.
# This may be replaced when dependencies are built.
