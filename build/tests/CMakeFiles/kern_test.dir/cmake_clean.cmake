file(REMOVE_RECURSE
  "CMakeFiles/kern_test.dir/kern/devices_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/devices_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/kernel_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/kernel_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/netlink_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/netlink_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/permission_monitor_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/permission_monitor_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/process_table_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/process_table_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/procfs_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/procfs_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/ptrace_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/ptrace_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/pty_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/pty_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/signals_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/signals_test.cpp.o.d"
  "CMakeFiles/kern_test.dir/kern/vfs_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern/vfs_test.cpp.o.d"
  "kern_test"
  "kern_test.pdb"
  "kern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
