
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kern/devices_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/devices_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/devices_test.cpp.o.d"
  "/root/repo/tests/kern/kernel_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/kernel_test.cpp.o.d"
  "/root/repo/tests/kern/netlink_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/netlink_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/netlink_test.cpp.o.d"
  "/root/repo/tests/kern/permission_monitor_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/permission_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/permission_monitor_test.cpp.o.d"
  "/root/repo/tests/kern/process_table_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/process_table_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/process_table_test.cpp.o.d"
  "/root/repo/tests/kern/procfs_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/procfs_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/procfs_test.cpp.o.d"
  "/root/repo/tests/kern/ptrace_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/ptrace_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/ptrace_test.cpp.o.d"
  "/root/repo/tests/kern/pty_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/pty_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/pty_test.cpp.o.d"
  "/root/repo/tests/kern/signals_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/signals_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/signals_test.cpp.o.d"
  "/root/repo/tests/kern/vfs_test.cpp" "tests/CMakeFiles/kern_test.dir/kern/vfs_test.cpp.o" "gcc" "tests/CMakeFiles/kern_test.dir/kern/vfs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/overhaul_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_x11.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/overhaul_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
