// Ablation: intent precision — input-driven (paper) vs ACG (Roesner [27]).
//
// §III-E concedes that Overhaul "provides strictly weaker security
// guarantees than prior work on user-driven access control, where a
// stronger connection between user intent and program behavior can be
// achieved". This bench quantifies that trade-off on a common workload:
//
//   * over-grant rate — the fraction of unrelated user clicks (typing,
//     scrolling: no intent to use a device) after which the clicked app
//     could nevertheless open the camera. Input-driven: every such click
//     opens a δ window. ACG: zero (only gadget clicks grant).
//   * transparency — fraction of *unmodified* applications whose legitimate
//     device use works at all. Input-driven: all. ACG: only the apps whose
//     developers added gadgets.
//
// Who wins depends on the column — exactly the paper's argument for
// shipping the transparent model on legacy systems.
#include <cstdio>

#include "bench_report.h"
#include "core/system.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

constexpr int kUnrelatedClicks = 2'000;
constexpr int kLegacyApps = 20;   // unmodified applications
constexpr int kModernApps = 5;    // ACG-aware (gadget-registering) apps

struct PolicyResult {
  int over_grants = 0;           // camera openable after an unrelated click
  int legacy_working = 0;        // unmodified apps whose mic use succeeded
  int modern_working = 0;        // gadget apps whose mic use succeeded
};

PolicyResult run(kern::GrantPolicy policy, std::uint64_t seed) {
  core::OverhaulConfig cfg;
  cfg.grant_policy = policy;
  cfg.audit = false;
  cfg.trace = false;
  core::OverhaulSystem sys(cfg);
  util::Rng rng(seed);
  PolicyResult result;

  // --- over-grant probe ------------------------------------------------------
  auto editor = sys.launch_gui_app("/usr/bin/editor", "editor",
                                   x11::Rect{0, 0, 400, 300})
                    .value();
  // The editor is ACG-aware but its gadgets are for the *clipboard*; the
  // unrelated clicks land on the text body.
  (void)sys.xserver().acg().register_gadget(
      editor.client, editor.window, x11::Rect{0, 0, 30, 20}, util::Op::kCopy);
  for (int i = 0; i < kUnrelatedClicks; ++i) {
    sys.input().click(50 + static_cast<int>(rng.next_below(300)),
                      60 + static_cast<int>(rng.next_below(200)));
    auto fd = sys.kernel().sys_open(editor.pid,
                                    core::OverhaulSystem::camera_path(),
                                    kern::OpenFlags::kRead);
    if (fd.is_ok()) {
      ++result.over_grants;
      (void)sys.kernel().sys_close(editor.pid, fd.value());
    }
    sys.advance(sim::Duration::seconds(3));
  }

  // --- transparency probe -------------------------------------------------------
  const auto user_driven_mic_use = [&](bool registers_gadget) {
    static int n = 0;
    auto app = sys.launch_gui_app("/usr/bin/a" + std::to_string(n),
                                  "a" + std::to_string(n),
                                  x11::Rect{0, 400, 200, 150})
                   .value();
    ++n;
    if (registers_gadget) {
      (void)sys.xserver().acg().register_gadget(app.client, app.window,
                                                x11::Rect{5, 5, 50, 30},
                                                util::Op::kMicrophone);
    }
    // The user clicks the record button (which is where a gadget would be).
    (void)sys.xserver().raise_window(app.client, app.window);
    const auto& r = sys.xserver().window(app.window)->rect();
    sys.input().click(r.x + 10, r.y + 10);
    auto fd = sys.kernel().sys_open(app.pid, core::OverhaulSystem::mic_path(),
                                    kern::OpenFlags::kRead);
    const bool ok = fd.is_ok();
    if (ok) (void)sys.kernel().sys_close(app.pid, fd.value());
    sys.advance(sim::Duration::seconds(3));
    return ok;
  };
  for (int i = 0; i < kLegacyApps; ++i)
    result.legacy_working += user_driven_mic_use(false);
  for (int i = 0; i < kModernApps; ++i)
    result.modern_working += user_driven_mic_use(true);

  return result;
}

}  // namespace

int main() {
  std::printf("Ablation: intent precision — input-driven vs ACG [27]\n\n");
  const PolicyResult overhaul = run(kern::GrantPolicy::kInputDriven, 42);
  const PolicyResult acg = run(kern::GrantPolicy::kAcg, 42);

  std::printf("%-46s %14s %10s\n", "", "input-driven", "ACG");
  std::printf("%-46s %13.1f%% %9.1f%%\n",
              "camera openable after unrelated click",
              100.0 * overhaul.over_grants / kUnrelatedClicks,
              100.0 * acg.over_grants / kUnrelatedClicks);
  std::printf("%-46s %11d/%-2d %7d/%-2d\n",
              "unmodified apps: user-driven mic use works",
              overhaul.legacy_working, kLegacyApps, acg.legacy_working,
              kLegacyApps);
  std::printf("%-46s %11d/%-2d %7d/%-2d\n",
              "ACG-aware apps: user-driven mic use works",
              overhaul.modern_working, kModernApps, acg.modern_working,
              kModernApps);

  const auto policy_json = [](const PolicyResult& r) {
    return "{\"over_grants\":" + std::to_string(r.over_grants) +
           ",\"legacy_working\":" + std::to_string(r.legacy_working) +
           ",\"modern_working\":" + std::to_string(r.modern_working) + "}";
  };
  bench::JsonReport report("ablation_precision");
  report.add("unrelated_clicks", kUnrelatedClicks);
  report.add("legacy_apps", kLegacyApps);
  report.add("modern_apps", kModernApps);
  report.add_raw("input_driven", policy_json(overhaul));
  report.add_raw("acg", policy_json(acg));
  (void)report.write("BENCH_ablation_precision.json");

  std::printf("\nExpected shape (paper §III-E, §VI): ACG wins on precision "
              "(zero over-grant), the\ninput-driven model wins on "
              "transparency (all unmodified apps keep working) —\nthe "
              "trade-off Overhaul deliberately makes for traditional OSes.\n");
  const bool ok = acg.over_grants == 0 && overhaul.over_grants > 0 &&
                  overhaul.legacy_working == kLegacyApps &&
                  acg.legacy_working == 0 &&
                  acg.modern_working == kModernApps;
  return ok ? 0 : 1;
}
