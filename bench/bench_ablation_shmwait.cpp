// Ablation: the shared-memory re-arm wait (page-fault wait list).
//
// §IV-B: after a fault, the vm_area sits on a wait list for 500 ms before
// its permissions are revoked again. Shorter waits mean more faults (cost);
// longer waits mean more IPC sends slip through unstamped (missed
// propagations, which must stay « δ = 2 s to matter). This bench sweeps the
// wait and reports both sides of the trade-off on a producer/consumer
// workload with user clicks sprinkled in.
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "core/system.h"
#include "util/ascii_chart.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

constexpr int kOps = 200'000;

struct Row {
  double wait_ms;
  std::uint64_t faults;
  std::uint64_t fast;
  std::uint64_t missed;
  double grant_rate;  // how often the consumer could open the camera right
                      // after a click-driven command
};

Row run(double wait_ms) {
  core::OverhaulConfig cfg;
  cfg.shm_rearm_wait = sim::Duration::seconds_f(wait_ms / 1000.0);
  cfg.audit = false;
  cfg.trace = false;
  core::OverhaulSystem sys(cfg);
  sys.kernel().page_faults().set_config(kern::PageFaultConfig{
      cfg.shm_rearm_wait, true, /*track_misses=*/true});

  auto& k = sys.kernel();
  auto gui = sys.launch_gui_app("/usr/bin/prod", "prod").value();
  auto consumer = k.sys_spawn(1, "/usr/bin/cons", "cons").value();
  auto seg = k.posix_shms().open("/ring", true, 16 * kern::kPageSize).value();
  auto pmap = k.sys_mmap_shared(gui.pid, seg).value();
  auto cmap = k.sys_mmap_shared(consumer, seg).value();
  auto* prod_task = k.processes().lookup(gui.pid);
  auto* cons_task = k.processes().lookup(consumer);
  const auto& rect = sys.xserver().window(gui.window)->rect();

  util::Rng rng(99);
  int commands = 0, granted = 0;
  for (int i = 0; i < kOps; ++i) {
    // Steady producer traffic at ~1k ops/s of virtual time; the consumer
    // polls at its own (randomized) cadence so the two mappings' re-arm
    // schedules are not phase-locked.
    pmap->write_u64(*prod_task, (i % 512) * 8, i);
    if (rng.chance(0.4)) (void)cmap->read_u64(*cons_task, (i % 512) * 8);
    sys.advance(sim::Duration::millis(1));

    // Every ~2000 ops the user clicks and the producer sends a command the
    // consumer acts on (the Fig. 4 pattern). The consumer keeps polling and
    // retrying the device open, as a real renderer's event loop would; the
    // command succeeds iff the stamp makes it across (one fault on each
    // side) before δ expires. This is precisely why the paper requires the
    // wait to be "sufficiently shorter than the 2 second interaction
    // expiration time".
    if (i % 2000 == 1999) {
      sys.input().click(rect.x + 1, rect.y + 1);
      ++commands;
      const sim::Timestamp deadline =
          sys.clock().now() + sim::Duration::seconds(2);
      bool ok = false;
      std::uint64_t tick = 0;
      while (!ok && sys.clock().now() < deadline) {
        // Producer traffic continues (command slot + payload slots).
        pmap->write_u64(*prod_task, 0, 0xC0FFEE);
        pmap->write_u64(*prod_task, ((tick % 511) + 1) * 8, tick);
        (void)cmap->read_u64(*cons_task, 0);
        auto fd = k.sys_open(consumer, core::OverhaulSystem::camera_path(),
                             kern::OpenFlags::kRead);
        if (fd.is_ok()) {
          ok = true;
          (void)k.sys_close(consumer, fd.value());
        }
        sys.advance(sim::Duration::millis(1));
        ++tick;
      }
      granted += ok;
      sys.advance(sim::Duration::millis(rng.uniform(1, 10)));
    }
  }

  const auto& s = k.page_faults().stats();
  return Row{wait_ms, s.faults, s.fast_accesses, s.missed_sends + s.missed_recvs,
             commands > 0 ? static_cast<double>(granted) / commands : 0.0};
}

}  // namespace

int main() {
  std::printf("Ablation: shm re-arm wait vs faults and missed propagations\n");
  std::printf("(producer/consumer at ~1k ops/s with click-driven commands "
              "every ~2 s)\n\n");
  std::printf("%10s %12s %14s %12s %18s\n", "wait", "faults", "fast accesses",
              "missed", "cmd grant rate");

  util::ChartSeries fault_curve{"faults (% of max)", {}, {}};
  util::ChartSeries grant_curve{"command grant rate (%)", {}, {}};
  std::vector<Row> rows;
  for (const double wait_ms : {0.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0}) {
    const Row row = run(wait_ms);
    rows.push_back(row);
    std::printf("%8.0fms %12llu %14llu %12llu %17.1f%%\n", row.wait_ms,
                static_cast<unsigned long long>(row.faults),
                static_cast<unsigned long long>(row.fast),
                static_cast<unsigned long long>(row.missed),
                row.grant_rate * 100.0);
  }
  const double max_faults =
      static_cast<double>(rows.front().faults);  // wait=0 is the maximum
  for (const Row& row : rows) {
    fault_curve.x.push_back(row.wait_ms);
    fault_curve.y.push_back(100.0 * static_cast<double>(row.faults) /
                            max_faults);
    grant_curve.x.push_back(row.wait_ms);
    grant_curve.y.push_back(row.grant_rate * 100.0);
  }
  util::AsciiChart chart(56, 12);
  chart.set_title(
      "\ninterposition cost vs usefulness (x: wait ms; both % of max):");
  chart.add_series(std::move(fault_curve));
  chart.add_series(std::move(grant_curve));
  std::printf("%s", chart.render().c_str());

  std::string row_array;
  for (const Row& row : rows) {
    if (!row_array.empty()) row_array += ",";
    row_array += "{\"wait_ms\":" + bench::JsonReport::number(row.wait_ms) +
                 ",\"faults\":" + std::to_string(row.faults) +
                 ",\"fast_accesses\":" + std::to_string(row.fast) +
                 ",\"missed_propagations\":" + std::to_string(row.missed) +
                 ",\"grant_rate\":" + bench::JsonReport::number(row.grant_rate) +
                 "}";
  }
  bench::JsonReport report("ablation_shmwait");
  report.add("ops", kOps);
  report.add_raw("rows", "[" + row_array + "]");
  (void)report.write("BENCH_ablation_shmwait.json");

  std::printf("\nExpected shape: faults fall sharply with longer waits; "
              "missed propagations grow; the command grant rate stays high "
              "while the wait ≪ δ (the paper's 500 ms choice).\n");
  return 0;
}
