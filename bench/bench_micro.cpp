// Micro-benchmarks (google-benchmark) for the individual Overhaul
// mechanisms: the per-operation costs behind Table I's aggregate rows.
#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "core/system.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

core::OverhaulConfig quiet(bool enabled, bool grant_always = true) {
  core::OverhaulConfig cfg;
  cfg.enabled = enabled;
  cfg.audit = false;
  cfg.trace = false;  // timed loops; span args would allocate
  if (enabled && grant_always)
    cfg.monitor_mode = kern::MonitorMode::kGrantAlways;
  return cfg;
}

// --- permission monitor ------------------------------------------------------

void BM_MonitorCheck(benchmark::State& state) {
  // Pure decision path (clipboard ops raise no visual alert).
  core::OverhaulSystem sys(quiet(true, false));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  sys.kernel().monitor().record_interaction(app.pid, sys.clock().now());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.kernel().monitor().check_now(app.pid, util::Op::kPaste, ""));
  }
}
BENCHMARK(BM_MonitorCheck);

void BM_MonitorCheckWithAlert(benchmark::State& state) {
  // Device ops additionally request a V_{A,op} alert from the display
  // manager (overlay record per decision).
  core::OverhaulSystem sys(quiet(true, false));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  sys.kernel().monitor().record_interaction(app.pid, sys.clock().now());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.kernel().monitor().check_now(app.pid, util::Op::kMicrophone, ""));
    if (sys.xserver().alerts().shown_count() > 100000) {
      state.PauseTiming();
      sys.xserver().alerts().clear_history();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_MonitorCheckWithAlert);

void BM_InteractionNotification(benchmark::State& state) {
  core::OverhaulSystem sys(quiet(true));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  auto& monitor = sys.kernel().monitor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monitor.record_interaction(app.pid, sys.clock().now()));
  }
}
BENCHMARK(BM_InteractionNotification);

// --- open(2) hook --------------------------------------------------------------

void BM_OpenSensitiveDevice(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  auto& k = sys.kernel();
  for (auto _ : state) {
    auto fd = k.sys_open(app.pid, core::OverhaulSystem::mic_path(),
                         kern::OpenFlags::kRead);
    (void)k.sys_close(app.pid, fd.value());
  }
}
BENCHMARK(BM_OpenSensitiveDevice)->Arg(0)->Arg(1);

void BM_OpenRegularFile(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto pid = sys.launch_daemon("/usr/bin/a", "a").value();
  auto& k = sys.kernel();
  (void)k.sys_open(pid, "/tmp/f", kern::OpenFlags::kCreate);
  for (auto _ : state) {
    auto fd = k.sys_open(pid, "/tmp/f", kern::OpenFlags::kRead);
    (void)k.sys_close(pid, fd.value());
  }
}
BENCHMARK(BM_OpenRegularFile)->Arg(0)->Arg(1);

// --- IPC paths -------------------------------------------------------------------

void BM_PipeWriteRead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto& k = sys.kernel();
  auto a = sys.launch_daemon("/usr/bin/a", "a").value();
  auto fds = k.sys_pipe(a).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.sys_write(a, fds.second, "0123456789abcdef"));
    benchmark::DoNotOptimize(k.sys_read(a, fds.first, 16));
  }
}
BENCHMARK(BM_PipeWriteRead)->Arg(0)->Arg(1);

void BM_ShmWriteDisarmedWindow(benchmark::State& state) {
  // The common case: writes inside the 500 ms wait window.
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto& k = sys.kernel();
  auto pid = sys.launch_daemon("/usr/bin/w", "w").value();
  auto seg = k.posix_shms().open("/s", true, 64 * kern::kPageSize).value();
  auto map = k.sys_mmap_shared(pid, seg).value();
  auto* task = k.processes().lookup(pid);
  map->write_u64(*task, 0, 0);  // take the initial fault outside the loop
  std::uint64_t i = 0;
  for (auto _ : state) {
    map->write_u64(*task, (i & 63) * 8, i);
    ++i;
  }
}
BENCHMARK(BM_ShmWriteDisarmedWindow)->Arg(0)->Arg(1);

void BM_ShmFaultPath(benchmark::State& state) {
  // Worst case: every access faults (wait window of zero).
  core::OverhaulConfig cfg = quiet(true);
  cfg.shm_rearm_wait = sim::Duration::nanos(0);
  core::OverhaulSystem sys(cfg);
  auto& k = sys.kernel();
  auto pid = sys.launch_daemon("/usr/bin/w", "w").value();
  auto seg = k.posix_shms().open("/s", true, kern::kPageSize).value();
  auto map = k.sys_mmap_shared(pid, seg).value();
  auto* task = k.processes().lookup(pid);
  std::uint64_t i = 0;
  for (auto _ : state) {
    map->write_u64(*task, 0, i++);
  }
}
BENCHMARK(BM_ShmFaultPath);

// --- display server paths ----------------------------------------------------------

void BM_GetImageRoot(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto app = sys.launch_gui_app("/usr/bin/shot", "shot").value();
  for (auto _ : state) {
    auto img = sys.xserver().screen().get_image(app.client, x11::kRootWindow);
    benchmark::DoNotOptimize(img.value().pixels.data());
  }
}
BENCHMARK(BM_GetImageRoot)->Arg(0)->Arg(1);

void BM_NetlinkQueryRoundTrip(benchmark::State& state) {
  core::OverhaulSystem sys(quiet(true, false));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  sys.kernel().monitor().record_interaction(app.pid, sys.clock().now());
  auto& x = sys.xserver();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        x.ask_monitor(app.client, util::Op::kPaste, ""));
  }
}
BENCHMARK(BM_NetlinkQueryRoundTrip);

void BM_HardwareInputDispatch(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  auto& x = sys.xserver();
  for (auto _ : state) {
    sys.input().click(100, 100);
    x.client(app.client)->drain();
  }
}
BENCHMARK(BM_HardwareInputDispatch)->Arg(0)->Arg(1);

void BM_IcccmPaste(benchmark::State& state) {
  // Full Fig. 6 paste round-trip (the Table-I clipboard row's unit).
  const bool enabled = state.range(0) != 0;
  core::OverhaulSystem sys(quiet(enabled));
  auto src = sys.launch_gui_app("/usr/bin/src", "src").value();
  auto dst = sys.launch_gui_app("/usr/bin/dst", "dst",
                                x11::Rect{300, 0, 100, 100})
                 .value();
  auto& x = sys.xserver();
  (void)x.selections().set_selection_owner(src.client, "CLIPBOARD",
                                           src.window);
  const std::string payload(4096, 'p');
  for (auto _ : state) {
    (void)x.selections().convert_selection(dst.client, "CLIPBOARD",
                                           dst.window, "P");
    x11::XClient* owner = x.client(src.client);
    while (owner->has_events()) {
      const x11::XEvent ev = owner->next_event();
      if (ev.type != x11::EventType::kSelectionRequest) continue;
      (void)x.selections().change_property(src.client, ev.requestor,
                                           ev.property, payload);
      x11::XEvent notify;
      notify.type = x11::EventType::kSelectionNotify;
      notify.selection = ev.selection;
      notify.property = ev.property;
      (void)x.send_event(src.client, ev.requestor, notify);
    }
    x.client(dst.client)->drain();
    benchmark::DoNotOptimize(
        x.selections().get_property(dst.client, dst.window, "P"));
    (void)x.selections().delete_property(dst.client, dst.window, "P");
  }
}
BENCHMARK(BM_IcccmPaste)->Arg(0)->Arg(1);

void BM_WireEventRoundTrip(benchmark::State& state) {
  x11::AtomRegistry atoms;
  x11::XEvent ev;
  ev.type = x11::EventType::kSelectionRequest;
  ev.selection = "CLIPBOARD";
  ev.property = "P";
  ev.target = "STRING";
  ev.window = 7;
  for (auto _ : state) {
    const auto rec = x11::wire::encode_event(ev, atoms);
    benchmark::DoNotOptimize(x11::wire::decode_event(rec, atoms));
  }
}
BENCHMARK(BM_WireEventRoundTrip);

void BM_Fork(benchmark::State& state) {
  core::OverhaulSystem sys(quiet(true));
  auto& k = sys.kernel();
  for (auto _ : state) {
    auto pid = k.sys_fork(1).value();
    state.PauseTiming();
    (void)k.sys_exit(pid);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Fork);

}  // namespace

// Expanded BENCHMARK_MAIN so the run can finish with a BENCH_micro.json
// metrics snapshot: one instrumented pass over each mediated mechanism on a
// grant-always system, dumping the obs counter values the hot paths bumped.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  core::OverhaulSystem sys(quiet(true, true));
  auto app = sys.launch_gui_app("/usr/bin/a", "a").value();
  auto& k = sys.kernel();
  if (auto fd = k.sys_open(app.pid, core::OverhaulSystem::mic_path(),
                           kern::OpenFlags::kRead);
      fd.is_ok()) {
    (void)k.sys_close(app.pid, fd.value());
  }
  auto fds = k.sys_pipe(app.pid).value();
  (void)k.sys_write(app.pid, fds.second, "x");
  (void)k.sys_read(app.pid, fds.first, 1);
  (void)sys.xserver().screen().get_image(app.client, x11::kRootWindow);

  bench::JsonReport report("micro");
  report.add_raw("metrics", sys.obs().metrics.to_json());
  return report.write("BENCH_micro.json") ? 0 : 1;
}
