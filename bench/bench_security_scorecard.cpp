// Security scorecard: the paper's attack surface as a battery, run against
// both machines. Every row is an attack technique from §II–§IV; the Overhaul
// column should read BLOCKED top to bottom, the baseline column shows what
// an unmodified system gives away. (The differential is the paper's security
// argument in one table.)
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/password_manager.h"
#include "bench_report.h"
#include "apps/runtime.h"
#include "apps/spyware.h"
#include "core/system.h"

using namespace overhaul;

namespace {

struct Attack {
  std::string name;
  // Returns true if the attack SUCCEEDED (resource/data obtained).
  std::function<bool(core::OverhaulSystem&)> run;
};

std::vector<Attack> attack_battery() {
  return {
      {"background mic capture",
       [](core::OverhaulSystem& sys) {
         auto spy = apps::Spyware::install(sys).value();
         return spy->try_record_microphone().is_ok();
       }},
      {"background screenshot",
       [](core::OverhaulSystem& sys) {
         auto spy = apps::Spyware::install(sys).value();
         return spy->try_screenshot().is_ok();
       }},
      {"clipboard sniff after user copy",
       [](core::OverhaulSystem& sys) {
         auto pm = apps::PasswordManagerApp::launch(sys).value();
         pm->store_password("bank", "hunter2");
         auto [cx, cy] = pm->click_point();
         sys.input().click(cx, cy);
         (void)pm->copy_password_to_clipboard("bank");
         sys.advance(sim::Duration::seconds(5));
         auto spy = apps::Spyware::install(sys).value();
         return spy->try_sniff_clipboard(*pm, "hunter2").is_ok();
       }},
      {"XTEST-faked click, then camera",
       [](core::OverhaulSystem& sys) {
         auto victim =
             sys.launch_gui_app("/usr/bin/cheese", "cheese").value();
         auto mal = apps::Spyware::install(sys).value();
         const auto& r = sys.xserver().window(victim.window)->rect();
         (void)sys.xserver().xtest_fake_button(mal->client(), r.x + 5, r.y + 5);
         auto fd = sys.kernel().sys_open(victim.pid,
                                         core::OverhaulSystem::camera_path(),
                                         kern::OpenFlags::kRead);
         return fd.is_ok();
       }},
      {"SendEvent-forged SelectionRequest",
       [](core::OverhaulSystem& sys) {
         auto pm = apps::PasswordManagerApp::launch(sys).value();
         pm->store_password("bank", "hunter2");
         auto [cx, cy] = pm->click_point();
         sys.input().click(cx, cy);
         (void)pm->copy_password_to_clipboard("bank");
         auto mal = apps::Spyware::install(sys).value();
         x11::XEvent forged;
         forged.type = x11::EventType::kSelectionRequest;
         forged.selection = "CLIPBOARD";
         forged.property = "LOOT";
         forged.requestor = mal->window();
         return sys.xserver()
             .send_event(mal->client(), pm->window(), forged)
             .is_ok();
       }},
      {"transparent-overlay clickjack",
       [](core::OverhaulSystem& sys) {
         auto victim = sys.launch_gui_app("/usr/bin/bank-app", "bank-app",
                                          x11::Rect{0, 0, 200, 200})
                           .value();
         (void)victim;
         auto trap = sys.launch_gui_app("/home/user/.trap", "trap",
                                        x11::Rect{0, 0, 200, 200})
                         .value();
         (void)sys.xserver().set_transparent(trap.client, trap.window, true);
         sys.advance(sim::Duration::minutes(2));
         sys.input().click(100, 100);
         auto fd = sys.kernel().sys_open(trap.pid,
                                         core::OverhaulSystem::mic_path(),
                                         kern::OpenFlags::kRead);
         return fd.is_ok();
       }},
      {"pop-over window harvest",
       [](core::OverhaulSystem& sys) {
         auto trap = sys.launch_gui_app("/home/user/.trap", "trap",
                                        x11::Rect{0, 0, 200, 200}, false)
                         .value();
         sys.input().click(100, 100);  // window mapped an instant ago
         auto fd = sys.kernel().sys_open(trap.pid,
                                         core::OverhaulSystem::mic_path(),
                                         kern::OpenFlags::kRead);
         return fd.is_ok();
       }},
      {"ptrace into privileged app",
       [](core::OverhaulSystem& sys) {
         auto mal = sys.launch_daemon("/home/user/.mal", "mal").value();
         auto victim =
             sys.kernel().sys_spawn(mal, "/usr/bin/rec", "rec").value();
         (void)sys.kernel().sys_ptrace_attach(mal, victim);
         sys.kernel().monitor().record_interaction(victim, sys.clock().now());
         auto fd = sys.kernel().sys_open(victim,
                                         core::OverhaulSystem::mic_path(),
                                         kern::OpenFlags::kRead);
         return fd.is_ok();
       }},
      {"netlink impersonation of Xorg",
       [](core::OverhaulSystem& sys) {
         auto mal = sys.launch_daemon("/home/user/.fake-xorg", "Xorg").value();
         return sys.kernel().netlink().connect(mal).is_ok();
       }},
      {"delayed capture beyond δ",
       [](core::OverhaulSystem& sys) {
         auto tool = sys.launch_gui_app("/usr/bin/shot", "shot").value();
         const auto& r = sys.xserver().window(tool.window)->rect();
         sys.input().click(r.x + 5, r.y + 5);
         sys.advance(sys.config().delta + sim::Duration::seconds(1));
         return sys.xserver()
             .screen()
             .get_image(tool.client, x11::kRootWindow)
             .is_ok();
       }},
  };
}

}  // namespace

int main() {
  std::printf("Security scorecard: attack battery on both machines\n\n");
  std::printf("%-38s %12s %12s\n", "attack", "OVERHAUL", "baseline");

  int blocked = 0, total = 0;
  std::string rows;
  for (const Attack& attack : attack_battery()) {
    core::OverhaulSystem protected_sys;
    core::OverhaulSystem baseline_sys(core::OverhaulConfig::baseline());
    const bool on_overhaul = attack.run(protected_sys);
    const bool on_baseline = attack.run(baseline_sys);
    std::printf("%-38s %12s %12s\n", attack.name.c_str(),
                on_overhaul ? "SUCCEEDED" : "blocked",
                on_baseline ? "succeeded" : "blocked");
    ++total;
    blocked += !on_overhaul;
    if (!rows.empty()) rows += ",";
    rows += "{\"attack\":" + obs::json::quote(attack.name) +
            ",\"overhaul_blocked\":" + (on_overhaul ? "false" : "true") +
            ",\"baseline_blocked\":" + (on_baseline ? "false" : "true") + "}";
  }

  std::printf("\n%d/%d attacks blocked under OVERHAUL.\n", blocked, total);
  bench::JsonReport report("security_scorecard");
  report.add("blocked", blocked);
  report.add("total", total);
  report.add_raw("rows", "[" + rows + "]");
  (void)report.write("BENCH_security_scorecard.json");
  std::printf("(Netlink impersonation shows 'blocked' on both columns: the "
              "introspection-based\npeer authentication is part of the "
              "channel itself, not of the enforcement mode.)\n");
  return blocked == total ? 0 : 1;
}
