// Ablation: the interaction-expiration threshold δ.
//
// §IV-B: "We empirically determined that setting a threshold of less than 1
// second could lead to falsely revoked permissions, but 2 seconds is
// sufficient to prevent incorrectly denying access to legitimate
// processes." This bench sweeps δ against a modelled human/application
// latency distribution and reports the false-deny rate per δ — the curve
// should fall to ~zero at 2 s.
//
// Latency model (click → device open), a mixture motivated by the paper's
// application pool:
//   70%  in-app handler latency        exponential(mean 120 ms)
//   20%  launcher → fork/exec → open   normal(700 ms, 250 ms), clipped ≥ 0
//   10%  heavyweight app spin-up       normal(1.3 s, 300 ms), clipped ≥ 0
#include <cstdio>
#include <vector>

#include "apps/user_model.h"
#include "bench_report.h"
#include "core/system.h"
#include "util/ascii_chart.h"
#include "util/histogram.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

constexpr int kTrialsPerDelta = 5'000;

// Latency model shared with the usability/longterm harnesses.
const apps::ThinkTimeModel& think_time() {
  static const apps::ThinkTimeModel model;
  return model;
}

}  // namespace

int main() {
  std::printf("Ablation: temporal-proximity threshold δ vs false denials\n");
  std::printf("(%d user-driven device accesses per setting; latency model in "
              "source)\n\n",
              kTrialsPerDelta);

  // Characterize the latency model itself so the curve is auditable.
  {
    util::Histogram dist(0.0, 3.0, 30);
    util::Rng rng(777);
    for (int i = 0; i < 100000; ++i) {
      dist.add(think_time().sample(rng).to_seconds());
    }
    std::printf("click → device-open latency model (seconds, 100k samples):\n");
    std::printf("  mean %.3f   p50 %.3f   p90 %.3f   p99 %.3f   max %.3f\n\n",
                dist.mean(), dist.percentile(50), dist.percentile(90),
                dist.percentile(99), dist.max());
  }
  std::printf("%10s %14s %16s\n", "δ", "false denies", "false-deny rate");

  const std::vector<double> deltas_s = {0.25, 0.5, 1.0, 2.0, 4.0};
  double rate_at_2s = 1.0;
  util::ChartSeries curve{"false-deny rate (%)", {}, {}};
  for (const double delta_s : deltas_s) {
    core::OverhaulConfig cfg;
    cfg.delta = sim::Duration::seconds_f(delta_s);
    cfg.audit = false;
    cfg.trace = false;
    core::OverhaulSystem sys(cfg);
    auto app = sys.launch_gui_app("/usr/bin/app", "app").value();
    const auto& r = sys.xserver().window(app.window)->rect();
    util::Rng rng(1234);

    int false_denies = 0;
    for (int i = 0; i < kTrialsPerDelta; ++i) {
      sys.input().click(r.x + 1, r.y + 1);
      sys.advance(think_time().sample(rng));
      auto fd = sys.kernel().sys_open(app.pid,
                                      core::OverhaulSystem::mic_path(),
                                      kern::OpenFlags::kRead);
      if (fd.is_ok()) {
        (void)sys.kernel().sys_close(app.pid, fd.value());
      } else {
        ++false_denies;
      }
      sys.advance(sim::Duration::seconds(5));  // decorrelate trials
    }
    const double rate = static_cast<double>(false_denies) / kTrialsPerDelta;
    if (delta_s == 2.0) rate_at_2s = rate;
    curve.x.push_back(delta_s);
    curve.y.push_back(rate * 100.0);
    std::printf("%8.2fs %14d %15.2f%%\n", delta_s, false_denies,
                rate * 100.0);
  }

  util::AsciiChart chart(56, 12);
  chart.set_title("\nfalse-deny rate vs δ (knee at the paper's 2 s):");
  chart.set_y_label("false-deny %, x: δ seconds");
  std::string rows;
  for (std::size_t i = 0; i < curve.x.size(); ++i) {
    if (!rows.empty()) rows += ",";
    rows += "{\"delta_s\":" + bench::JsonReport::number(curve.x[i]) +
            ",\"false_deny_pct\":" + bench::JsonReport::number(curve.y[i]) +
            "}";
  }
  chart.add_series(std::move(curve));
  std::printf("%s", chart.render().c_str());

  bench::JsonReport report("ablation_delta");
  report.add("trials_per_delta", kTrialsPerDelta);
  report.add_raw("rows", "[" + rows + "]");
  (void)report.write("BENCH_ablation_delta.json");

  std::printf("\nPaper's observation: δ < 1 s falsely revokes; δ = 2 s is "
              "sufficient. Expected shape: rate ≈ 0 at 2 s.\n");
  return rate_at_2s < 0.005 ? 0 : 1;
}
