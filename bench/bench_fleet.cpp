// Fleet-scale benchmark: boot 1k+ full per-seat kernel stacks in one
// process and drive them from the fleet harness (DESIGN.md §14).
//
// Shape:
//   1. staggered boot storm (one seat per virtual millisecond) with one GUI
//      session launched on each seat as it comes up, timed wall-clock;
//   2. a seeded interaction mix — hardware clicks, permission decisions
//      inside and outside δ, cross-shard P2 sends/receives over a ring of
//      XShardLinks — stepped through the harness's rotated round-robin,
//      with every per-shard step timed into a latency histogram;
//   3. BENCH_fleet.json: aggregate decisions/sec and notifications/sec,
//      cross-shard send count, the peak-RSS proxy (process-table slabs +
//      audit rings), and per-shard step latency p50/p99.
//
// The default run (1024 shards, mixed backends) is the ROADMAP's
// "thousands of concurrent desktops in one address space" demonstrator and
// hard-fails if fewer than 1000 sessions are live after the storm.
// --quick (128 shards, 8 rounds) is the check.sh smoke shape.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.h"
#include "fleet/harness.h"
#include "sim/parallel.h"
#include "util/histogram.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Options {
  int shards = 1024;
  int rounds = 32;
  int threads = 1;
  fleet::BackendMix mix = fleet::BackendMix::kMixed;
  std::uint64_t seed = 1;
  bool quick = false;
};

// --- worker-scaling sweep ----------------------------------------------------
// Fresh fleet per thread count, identical deterministic workload: every seat
// runs a self-re-arming beat inside its own scheduler issuing 16 permission
// checks (plus periodic clicks and cross-shard ring traffic) per quantum, so
// stepping the fleet IS the decision workload and decisions/sec measures the
// engine, not the driver loop. The determinism contract doubles as the
// sweep's self-check: every point must produce the identical decision total.
struct SweepBeat {
  fleet::FleetHarness* f = nullptr;
  fleet::ShardId id = 0;
  kern::Pid pid = kern::kNoPid;
  fleet::XShardLink* link = nullptr;
  int side = 0;
  int ticks_left = 0;
  int tick = 0;

  void arm() {
    f->shard(id).system().scheduler().after(sim::Duration::millis(10),
                                            [this] { run(); });
  }

  void run() {
    auto& shard = f->shard(id);
    if (tick % 3 == 0) shard.system().input().click(60, 60);
    for (int c = 0; c < 16; ++c)
      (void)shard.kernel().monitor().check_now(
          pid, c % 2 == 0 ? util::Op::kMicrophone : util::Op::kScreenCapture,
          "sweep");
    if (link != nullptr) {
      if (tick % 2 == 0)
        (void)link->send(side, "beat");
      else
        (void)link->receive(side);
    }
    ++tick;
    if (--ticks_left > 0) arm();
  }
};

struct SweepPoint {
  int threads = 0;
  double wall_s = 0;
  std::uint64_t decisions = 0;
  double decisions_per_sec = 0;
};

SweepPoint run_sweep_point(int threads, int shards, int quanta,
                           std::uint64_t seed, fleet::BackendMix mix) {
  fleet::FleetConfig fc;
  fc.shards = shards;
  fc.mix = mix;
  fc.seed = seed;
  fc.threads = threads;
  // Pure-throughput posture: no tracing, no audit ring — the sweep compares
  // the engine against itself, not against the RSS story of the main phases.
  fc.base.trace = false;
  fc.base.audit = false;
  fleet::FleetHarness f(fc);
  f.boot_fleet();
  for (fleet::ShardId id = 0; id < f.shard_count(); ++id)
    (void)f.shard(id).launch_session("/usr/bin/seat-app", "seat-app");
  f.advance(sim::Duration::millis(600));
  for (fleet::ShardId id = 0; id + 1 < f.shard_count(); id += 2)
    f.connect_xshard(id, f.shard(id).session_pids()[0], id + 1,
                     f.shard(id + 1).session_pids()[0]);
  std::vector<SweepBeat> beats(static_cast<std::size_t>(f.shard_count()));
  for (fleet::ShardId id = 0; id < f.shard_count(); ++id) {
    SweepBeat& b = beats[static_cast<std::size_t>(id)];
    b.f = &f;
    b.id = id;
    b.pid = f.shard(id).session_pids()[0];
    if (static_cast<std::size_t>(id / 2) < f.link_count()) {
      b.link = &f.link(static_cast<std::size_t>(id / 2));
      b.side = id % 2;
    }
    b.ticks_left = quanta;
    b.arm();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int q = 0; q < quanta + 2; ++q) f.step();
  SweepPoint p;
  p.threads = f.threads();
  p.wall_s = seconds_since(t0);
  p.decisions = f.aggregate_counter("monitor.decisions.granted") +
                f.aggregate_counter("monitor.decisions.denied");
  p.decisions_per_sec = p.decisions / p.wall_s;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
      opt.shards = 128;
      opt.rounds = 8;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      opt.shards = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads = std::atoi(arg + 10);
      if (opt.threads < 1) {
        std::fprintf(stderr, "bench_fleet: --threads must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--backend=x11") == 0) {
      opt.mix = fleet::BackendMix::kX11;
    } else if (std::strcmp(arg, "--backend=wl") == 0 ||
               std::strcmp(arg, "--backend=wayland") == 0) {
      opt.mix = fleet::BackendMix::kWayland;
    } else if (std::strcmp(arg, "--backend=mixed") == 0) {
      opt.mix = fleet::BackendMix::kMixed;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--quick] [--shards=N] [--threads=N] "
                   "[--seed=N] [--backend=x11|wl|mixed]\n");
      return 2;
    }
  }
  if (opt.shards < 2) {
    std::fprintf(stderr, "bench_fleet: need at least 2 shards\n");
    return 2;
  }

  fleet::FleetConfig fc;
  fc.shards = opt.shards;
  fc.mix = opt.mix;
  fc.seed = opt.seed;
  fc.threads = opt.threads;
  // Benchmark posture, as in bench_table1: counters stay on (relaxed atomic
  // adds), the allocating observability goes off. Audit rings stay ON here —
  // they are part of the per-seat RSS story this bench exists to measure —
  // but bounded so a long mix cannot grow without limit.
  fc.base.trace = false;
  fc.base.audit = true;

  std::printf("fleet bench: %d shards (%s), seed %llu, %d mix rounds, "
              "%d worker lane%s\n",
              opt.shards, fleet::backend_mix_name(opt.mix),
              static_cast<unsigned long long>(opt.seed), opt.rounds,
              opt.threads, opt.threads == 1 ? "" : "s");

  fleet::FleetHarness f(fc);

  // --- phase 1: boot storm ---------------------------------------------------
  const auto boot_start = std::chrono::steady_clock::now();
  f.schedule_boot_storm(opt.shards, fc.boot_stagger);
  while (f.shard_count() < opt.shards) f.step();
  int sessions = 0;
  for (fleet::ShardId id = 0; id < f.shard_count(); ++id) {
    auto& shard = f.shard(id);
    shard.kernel().audit().set_capacity(1024);
    if (shard.launch_session("/usr/bin/seat-app", "seat-app").is_ok())
      ++sessions;
  }
  // Let every surface cross the visibility threshold via fleet time.
  f.advance(sim::Duration::millis(600));
  // Cross-shard ring: seat k talks to seat k+1.
  for (fleet::ShardId id = 0; id + 1 < f.shard_count(); id += 2) {
    f.connect_xshard(id, f.shard(id).session_pids()[0], id + 1,
                     f.shard(id + 1).session_pids()[0]);
  }
  const double boot_s = seconds_since(boot_start);
  std::printf("booted %d shards / %d sessions / %zu links in %.3f s "
              "(%.0f boots/s)\n",
              f.shard_count(), sessions, f.link_count(), boot_s,
              f.shard_count() / boot_s);

  if (!opt.quick && sessions < 1000) {
    std::fprintf(stderr,
                 "bench_fleet: FAIL — only %d concurrent sessions "
                 "(acceptance floor is 1000)\n",
                 sessions);
    return 1;
  }

  // --- phase 2: scripted interaction mix -------------------------------------
  // Per round: click into 1/8 of the seats, decide for 1/4 (some fresh, some
  // stale — the dt draw straddles δ), pump every cross-shard link once in a
  // seeded direction, and step the whole fleet with per-shard step timing.
  util::Rng rng(opt.seed * 7919 + 1);
  // Serial runs time every per-shard step (100 ns bins up to 50 µs; slower
  // steps clamp into the top bin). Parallel runs cannot time individual
  // shards from the coordinator, so they time whole engine quanta instead —
  // wider bins, and the JSON labels which shape the percentiles describe.
  util::Histogram step_ns(0, opt.threads == 1 ? 5e4 : 5e7, 500);
  std::uint64_t checks = 0;
  const auto run_start = std::chrono::steady_clock::now();
  for (int round = 0; round < opt.rounds; ++round) {
    const int n = f.shard_count();
    for (int i = 0; i < n / 8; ++i) {
      const auto id = static_cast<fleet::ShardId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      f.shard(id).system().input().click(50, 50);
    }
    for (int i = 0; i < n / 4; ++i) {
      const auto id = static_cast<fleet::ShardId>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      auto& shard = f.shard(id);
      (void)shard.kernel().monitor().check_now(
          shard.session_pids()[0],
          rng.next_below(2) == 0 ? util::Op::kMicrophone
                                 : util::Op::kScreenCapture,
          "fleet-mix");
      ++checks;
    }
    for (std::size_t l = 0; l < f.link_count(); ++l) {
      // Round-robin over the ring: one send + the matching receive.
      const int side = static_cast<int>(rng.next_below(2));
      auto& link = f.link(l);
      (void)link.send(side, "beat");
      (void)link.receive(1 - side);
    }
    // Advance 100 ms of fleet time per round. Serial: manual per-shard loop
    // with per-step timing (immediate link delivery — the pre-engine shape).
    // Parallel: the engine quantum, timed whole.
    for (int q = 0; q < 10; ++q) {
      if (opt.threads == 1) {
        f.begin_step();
        for (const fleet::ShardId id : f.step_order()) {
          const auto t0 = std::chrono::steady_clock::now();
          f.step_shard(id);
          step_ns.add(seconds_since(t0) * 1e9);
        }
      } else {
        const auto t0 = std::chrono::steady_clock::now();
        f.step();
        step_ns.add(seconds_since(t0) * 1e9);
      }
    }
  }
  const double run_s = seconds_since(run_start);

  // --- phase 3: rollups ------------------------------------------------------
  const std::uint64_t granted = f.aggregate_counter("monitor.decisions.granted");
  const std::uint64_t denied = f.aggregate_counter("monitor.decisions.denied");
  const std::uint64_t decisions = granted + denied;
  const std::uint64_t notifications =
      f.aggregate_counter("monitor.notifications");
  const std::uint64_t xshard_sends =
      f.aggregate_counter("ipc.xshard.send_stamps");
  const std::size_t rss_proxy = f.rss_proxy_bytes();
  // Audit-memory delta: bytes the binary rings actually hold vs what the
  // same live records would cost as text-log entries (AuditRecord + two
  // heap strings each) — the per-seat RSS saving DESIGN.md §16 claims.
  std::size_t audit_bytes_binary = 0;
  std::size_t audit_bytes_text_equiv = 0;
  for (fleet::ShardId id = 0; id < f.shard_count(); ++id) {
    const auto& sink = f.shard(id).kernel().audit();
    audit_bytes_binary += sink.memory_bytes();
    audit_bytes_text_equiv += sink.text_equiv_bytes();
  }

  std::printf("mix: %.3f s wall for %llu steps — %llu decisions (%.0f/s), "
              "%llu notifications (%.0f/s), %llu xshard sends\n",
              run_s, static_cast<unsigned long long>(f.steps_taken()),
              static_cast<unsigned long long>(decisions), decisions / run_s,
              static_cast<unsigned long long>(notifications),
              notifications / run_s,
              static_cast<unsigned long long>(xshard_sends));
  std::printf("%s latency: p50 %.0f ns, p99 %.0f ns (n=%llu)\n",
              opt.threads == 1 ? "per-shard step" : "per-quantum",
              step_ns.percentile(50), step_ns.percentile(99),
              static_cast<unsigned long long>(step_ns.count()));
  std::printf("RSS proxy (slab chunks + audit rings): %.2f MiB across %d "
              "live shards\n",
              rss_proxy / (1024.0 * 1024.0), f.live_count());
  std::printf("audit rings: %.2f MiB binary vs %.2f MiB text-equivalent "
              "(%.2fx)\n",
              audit_bytes_binary / (1024.0 * 1024.0),
              audit_bytes_text_equiv / (1024.0 * 1024.0),
              audit_bytes_binary > 0
                  ? static_cast<double>(audit_bytes_text_equiv) /
                        static_cast<double>(audit_bytes_binary)
                  : 0.0);

  if (decisions != checks) {
    std::fprintf(stderr,
                 "bench_fleet: FAIL — rollup saw %llu decisions but the "
                 "script issued %llu checks\n",
                 static_cast<unsigned long long>(decisions),
                 static_cast<unsigned long long>(checks));
    return 1;
  }

  // --- phase 4: worker-scaling sweep -----------------------------------------
  // 1/2/4/8 lanes over an identical beat-driven fleet. Two gates ride on it:
  // every point must produce the identical decision total (the determinism
  // contract, cheap to hold here), and on machines with >= 4 hardware lanes
  // the 4-worker point must clear 2x the serial decisions/sec.
  const int sweep_shards = opt.quick ? 64 : 256;
  const int sweep_quanta = opt.quick ? 40 : 160;
  const int hw_lanes = sim::ParallelExecutor::hardware_lanes();
  std::printf("scaling sweep: %d shards x %d quanta, hardware lanes %d\n",
              sweep_shards, sweep_quanta, hw_lanes);
  std::vector<SweepPoint> sweep;
  for (const int t : {1, 2, 4, 8}) {
    sweep.push_back(
        run_sweep_point(t, sweep_shards, sweep_quanta, opt.seed, opt.mix));
    const SweepPoint& p = sweep.back();
    std::printf("  threads=%d: %.3f s, %llu decisions, %.0f/s (%.2fx)\n",
                p.threads, p.wall_s,
                static_cast<unsigned long long>(p.decisions),
                p.decisions_per_sec,
                p.decisions_per_sec / sweep.front().decisions_per_sec);
  }
  for (const SweepPoint& p : sweep) {
    if (p.decisions != sweep.front().decisions) {
      std::fprintf(stderr,
                   "bench_fleet: FAIL — sweep point threads=%d produced "
                   "%llu decisions, serial produced %llu (determinism "
                   "violation)\n",
                   p.threads, static_cast<unsigned long long>(p.decisions),
                   static_cast<unsigned long long>(sweep.front().decisions));
      return 1;
    }
  }
  const double speedup2 = sweep[1].decisions_per_sec / sweep[0].decisions_per_sec;
  const double speedup4 = sweep[2].decisions_per_sec / sweep[0].decisions_per_sec;
  const double speedup8 = sweep[3].decisions_per_sec / sweep[0].decisions_per_sec;
  std::string sweep_gate;
  if (hw_lanes >= 4) {
    if (speedup4 < 2.0) {
      std::fprintf(stderr,
                   "bench_fleet: FAIL — 4-worker speedup %.2fx is below the "
                   "2x floor on a %d-lane machine\n",
                   speedup4, hw_lanes);
      return 1;
    }
    sweep_gate = "pass";
  } else {
    sweep_gate = "skipped: hardware lanes < 4";
    std::printf("  speedup floor skipped (%d hardware lane%s; the 2x-at-4-"
                "workers gate arms on >= 4)\n",
                hw_lanes, hw_lanes == 1 ? "" : "s");
  }

  bench::JsonReport report("fleet");
  report.add_raw("quick", opt.quick ? "true" : "false");
  report.add("shards", opt.shards);
  report.add("backend", fleet::backend_mix_name(opt.mix));
  report.add("seed", static_cast<std::uint64_t>(opt.seed));
  report.add("rounds", opt.rounds);
  report.add("threads", opt.threads);
  report.add("hardware_threads", hw_lanes);
  report.add("sessions", sessions);
  report.add("links", static_cast<std::uint64_t>(f.link_count()));
  report.add("boot_s", boot_s);
  report.add("boots_per_sec", f.shard_count() / boot_s);
  report.add("run_s", run_s);
  report.add("fleet_steps", f.steps_taken());
  report.add("decisions", decisions);
  report.add("decisions_per_sec", decisions / run_s);
  report.add("notifications", notifications);
  report.add("notifications_per_sec", notifications / run_s);
  report.add("xshard_sends", xshard_sends);
  report.add("xshard_recv_adoptions",
             f.aggregate_counter("ipc.xshard.recv_adoptions"));
  report.add("rss_proxy_bytes", static_cast<std::uint64_t>(rss_proxy));
  report.add("audit_bytes_binary",
             static_cast<std::uint64_t>(audit_bytes_binary));
  report.add("audit_bytes_text_equiv",
             static_cast<std::uint64_t>(audit_bytes_text_equiv));
  report.add("audit_mem_ratio",
             audit_bytes_binary > 0
                 ? static_cast<double>(audit_bytes_text_equiv) /
                       static_cast<double>(audit_bytes_binary)
                 : 0.0);
  report.add("step_timing", opt.threads == 1 ? "per_shard" : "per_quantum");
  report.add("step_p50_ns", step_ns.percentile(50));
  report.add("step_p99_ns", step_ns.percentile(99));
  report.add("sweep_shards", sweep_shards);
  report.add("sweep_quanta", sweep_quanta);
  std::string sweep_json = "[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    if (i > 0) sweep_json += ",";
    sweep_json += "{\"threads\":" + std::to_string(p.threads) +
                  ",\"wall_s\":" + bench::JsonReport::number(p.wall_s) +
                  ",\"decisions\":" + std::to_string(p.decisions) +
                  ",\"decisions_per_sec\":" +
                  bench::JsonReport::number(p.decisions_per_sec) + "}";
  }
  sweep_json += "]";
  report.add_raw("sweep", sweep_json);
  report.add("sweep_speedup_2", speedup2);
  report.add("sweep_speedup_4", speedup4);
  report.add("sweep_speedup_8", speedup8);
  report.add("sweep_gate", sweep_gate);
  if (!report.write("BENCH_fleet.json")) return 1;
  return 0;
}
