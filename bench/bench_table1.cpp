// Table I regeneration: performance overhead of Overhaul.
//
// The paper's five rows, each run on the baseline (unmodified kernel + X
// server) and on Overhaul in the Table-I measurement configuration (full
// decision path, grant-always, so no scripted user is needed):
//   Device Access   — open+close the microphone node N times
//   Clipboard       — N ICCCM paste round-trips (paste is the worst case)
//   Screen Capture  — N GetImage captures of the root window
//   Shared Memory   — N 8-byte random writes over a 10,000-page segment
//   Filesystem      — Bonnie++-style create/stat/delete of 102,400 files
//                     (only create is affected; stat/delete not interposed)
//
// Iteration counts are scaled down from the paper (which used 10M opens /
// 100k pastes / 10G writes on real hardware); the *ratio* between the two
// columns is the reproduced quantity, not the absolute seconds.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/system.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

// --quick divides the iteration counts and runs a single repetition: the
// numbers are meaningless as measurements but exercise the full pipeline
// (including the JSON report), which is what the check.sh smoke step needs.
int g_scale = 1;

// --backend=wl reruns the display-server-dependent rows (Clipboard, Screen
// Capture) against the Wayland compositor instead of the X server; the
// kernel-side rows are backend-independent and are skipped in that mode.
core::DisplayBackendKind g_backend = core::DisplayBackendKind::kX11;

// --quick rows are single-repetition smoke readings: they are emitted for
// the trajectory record but marked non-gating so bench_gate / bench_diff
// never fail CI on a number with no spread behind it.
bool g_gating = true;

// --ci enables MAD-based outlier rejection: a shared CI box takes scheduling
// hiccups that land a single repetition far outside the others, and one such
// ratio can drag the reported interval across the gate threshold. Off for
// full runs (enough repetitions to absorb a hiccup) and for --quick (one
// repetition — nothing to reject from).
bool g_mad = false;

const char* backend_tag() {
  return g_backend == core::DisplayBackendKind::kWayland ? "wl" : "x11";
}

int kDeviceOpens = 100'000;
int kPastes = 20'000;
int kCaptures = 500;
int kShmWrites = 10'000'000;
constexpr int kShmPages = 10'000;
int kBonnieFiles = 102'400;
// Real clipboard payloads are kilobytes (rich text, images); the transfer
// cost is what the permission query is amortized against.
constexpr std::size_t kClipboardPayload = 256 * 1024;

volatile std::uint64_t benchmarkish_sink = 0;

core::OverhaulConfig bench_config(bool enabled) {
  core::OverhaulConfig cfg = enabled ? core::OverhaulConfig::grant_always()
                                     : core::OverhaulConfig::baseline();
  cfg.display_backend = g_backend;
  cfg.audit = false;  // tight loops; the log would dominate memory
  cfg.trace = false;  // spans allocate; counters alone stay on
  return cfg;
}

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Untimed in-instance warmup: each workload runs a slice of its own loop
// before the timed section so the freshly constructed system (cold maps,
// unfaulted heap, empty event queues) is not charged to whichever column
// happens to run first. Without this the Clipboard / Screen Capture rows
// can report *negative* overhead purely from construction-order luck.
int warmup_iters(int total) { return std::max(1, total / 100); }

// --- workloads ---------------------------------------------------------------

double run_device_access(bool enabled) {
  core::OverhaulSystem sys(bench_config(enabled));
  auto app = sys.launch_gui_app("/usr/bin/bench", "bench").value();
  auto& k = sys.kernel();
  const auto open_close = [&] {
    auto fd = k.sys_open(app.pid, core::OverhaulSystem::mic_path(),
                         kern::OpenFlags::kRead);
    (void)k.sys_close(app.pid, fd.value());
  };
  for (int i = 0; i < warmup_iters(kDeviceOpens); ++i) open_close();
  return time_seconds([&] {
    for (int i = 0; i < kDeviceOpens; ++i) open_close();
  });
}

double run_clipboard(bool enabled) {
  core::OverhaulSystem sys(bench_config(enabled));
  auto src = sys.launch_gui_app("/usr/bin/src", "src").value();
  auto dst = sys.launch_gui_app("/usr/bin/dst", "dst",
                                x11::Rect{300, 0, 200, 200}).value();
  const std::string payload_wl(kClipboardPayload, 'x');
  if (g_backend == core::DisplayBackendKind::kWayland) {
    auto& comp = sys.compositor();
    auto& data = comp.data_devices();
    // Owner established once; the wl_data_offer.receive round-trip (request
    // → source send → take) is the measured op, as convert_selection is on
    // X11. The monitor is in grant-always mode, so every receive pays the
    // full mediation path.
    if (!data.set_selection(src.client, comp.seat().last_minted(),
                            {"text/plain"})
             .is_ok())
      return -1;
    const auto paste_once = [&] {
      (void)data.request_receive(dst.client, "text/plain");
      wl::WlConnection* owner = comp.connection(src.client);
      while (owner->has_events()) {
        const wl::WlEvent ev = owner->next_event();
        if (ev.type != wl::WlEventType::kDataSendRequest) continue;
        (void)data.source_send(src.client, ev.mime, payload_wl);
      }
      (void)data.take_received(dst.client, "text/plain");
    };
    for (int i = 0; i < warmup_iters(kPastes); ++i) paste_once();
    return time_seconds([&] {
      for (int i = 0; i < kPastes; ++i) paste_once();
    });
  }
  auto& x = sys.xserver();
  auto& sel = x.selections();
  // Owner established once; the benchmark measures pastes (the costly op).
  if (!sel.set_selection_owner(src.client, "CLIPBOARD", src.window).is_ok())
    return -1;
  const std::string payload(kClipboardPayload, 'x');
  const auto paste_once = [&] {
    (void)sel.convert_selection(dst.client, "CLIPBOARD", dst.window, "P");
    // Owner answers the SelectionRequest.
    x11::XClient* owner = x.client(src.client);
    while (owner->has_events()) {
      const x11::XEvent ev = owner->next_event();
      if (ev.type != x11::EventType::kSelectionRequest) continue;
      (void)sel.change_property(src.client, ev.requestor, ev.property,
                                payload);
      x11::XEvent notify;
      notify.type = x11::EventType::kSelectionNotify;
      notify.selection = ev.selection;
      notify.property = ev.property;
      (void)x.send_event(src.client, ev.requestor, notify);
    }
    x.client(dst.client)->drain();
    (void)sel.get_property(dst.client, dst.window, "P");
    (void)sel.delete_property(dst.client, dst.window, "P");
  };
  for (int i = 0; i < warmup_iters(kPastes); ++i) paste_once();
  return time_seconds([&] {
    for (int i = 0; i < kPastes; ++i) paste_once();
  });
}

double run_screen_capture(bool enabled) {
  core::OverhaulSystem sys(bench_config(enabled));
  auto app = sys.launch_gui_app("/usr/bin/shot", "shot").value();
  if (g_backend == core::DisplayBackendKind::kWayland) {
    auto& shot = sys.compositor().screencopy();
    const auto capture_once = [&] {
      auto img = shot.capture_output(app.client);
      benchmarkish_sink = benchmarkish_sink + img.value().pixels[0];
    };
    for (int i = 0; i < warmup_iters(kCaptures); ++i) capture_once();
    return time_seconds([&] {
      for (int i = 0; i < kCaptures; ++i) capture_once();
    });
  }
  auto& screen = sys.xserver().screen();
  const auto capture_once = [&] {
    auto img = screen.get_image(app.client, x11::kRootWindow);
    benchmarkish_sink = benchmarkish_sink + img.value().pixels[0];
  };
  for (int i = 0; i < warmup_iters(kCaptures); ++i) capture_once();
  return time_seconds([&] {
    for (int i = 0; i < kCaptures; ++i) capture_once();
  });
}

// Shared memory: both columns run against the SAME segment (identical
// memory layout), differing only in the vm_area state — a null engine is
// the unmodified kernel (permissions never revoked), the real engine is
// Overhaul's interposition. Dependency-chained random access makes every
// iteration pay true memory latency, as the paper's random-write workload
// does on hardware.
std::pair<double, double> run_shared_memory_pair() {
  core::OverhaulSystem sys(bench_config(true));
  auto& k = sys.kernel();
  auto pid = sys.launch_daemon("/usr/bin/w", "w").value();
  auto seg = k.posix_shms()
                 .open("/bench", true, kShmPages * kern::kPageSize)
                 .value();
  auto* task = k.processes().lookup(pid);
  kern::ShmMapping base_map(seg, nullptr, pid);
  kern::ShmMapping over_map(seg, &k.page_faults(), pid);

  const std::size_t slots = (kShmPages * kern::kPageSize) / 8;
  {
    util::Rng rng(7);
    for (std::size_t i = 0; i < slots; ++i) {
      base_map.write_u64(*task, i * 8, rng.next_u64());
    }
  }
  const auto chain = [&](kern::ShmMapping& map) {
    return time_seconds([&] {
      std::uint64_t cursor = 12345;
      for (int i = 0; i < kShmWrites; ++i) {
        const std::size_t slot = static_cast<std::size_t>(cursor) % slots;
        cursor =
            map.read_u64(*task, slot * 8) + static_cast<std::uint64_t>(i);
        map.write_u64(*task, slot * 8, cursor);
      }
      benchmarkish_sink = benchmarkish_sink + cursor;
    });
  };
  (void)chain(base_map);  // warm both code paths + the buffer
  (void)chain(over_map);
  // ABBA ordering cancels drift (frequency ramp, cache state) within the
  // pair; take each side's minimum.
  const double base_a = chain(base_map);
  const double over_a = chain(over_map);
  const double over_b = chain(over_map);
  const double base_b = chain(base_map);
  return {std::min(base_a, base_b), std::min(over_a, over_b)};
}

struct BonnieResult {
  double create_s = 0;
  double stat_s = 0;
  double delete_s = 0;
};

BonnieResult run_bonnie(bool enabled) {
  core::OverhaulSystem sys(bench_config(enabled));
  auto& k = sys.kernel();
  auto pid = sys.launch_daemon("/usr/bin/bonnie", "bonnie").value();
  // Warmup pass: populate and drain the namespace once so allocator state
  // is comparable between the two configurations.
  for (int i = 0; i < kBonnieFiles; ++i) {
    (void)k.sys_open(pid, "/tmp/f" + std::to_string(i),
                     kern::OpenFlags::kCreate);
  }
  for (int i = 0; i < kBonnieFiles; ++i) {
    (void)k.sys_unlink(pid, "/tmp/f" + std::to_string(i));
  }
  // Three full create/stat/delete cycles inside the same namespace; report
  // each phase's minimum so per-cycle allocator jitter cancels.
  BonnieResult r{1e99, 1e99, 1e99};
  for (int cycle = 0; cycle < 3; ++cycle) {
    r.create_s = std::min(r.create_s, time_seconds([&] {
      for (int i = 0; i < kBonnieFiles; ++i) {
        auto fd = k.sys_open(pid, "/tmp/f" + std::to_string(i),
                             kern::OpenFlags::kCreate);
        (void)k.sys_close(pid, fd.value());
      }
    }));
    r.stat_s = std::min(r.stat_s, time_seconds([&] {
      for (int i = 0; i < kBonnieFiles; ++i) {
        (void)k.sys_stat("/tmp/f" + std::to_string(i));
      }
    }));
    r.delete_s = std::min(r.delete_s, time_seconds([&] {
      for (int i = 0; i < kBonnieFiles; ++i) {
        (void)k.sys_unlink(pid, "/tmp/f" + std::to_string(i));
      }
    }));
  }
  return r;
}

// Aggregates one row: per-repetition ratios are computed inside a shared
// machine state (back-to-back runs), so their median is far more stable
// than the ratio of aggregate times.
struct Agg {
  double base = 1e99;
  double over = 1e99;
  std::vector<double> ratios;

  void add(double b, double o) {
    base = std::min(base, b);
    over = std::min(over, o);
    ratios.push_back(o / b);
  }

  // The ratios that survive outlier rejection. Under --ci a repetition whose
  // ratio sits more than 3.5 sigma-equivalents (sigma ~ 1.4826 * MAD for a
  // normal population) from the median is treated as a scheduling artifact,
  // not a measurement. The guard rails: fewer than 5 repetitions cannot
  // support a robust scale estimate, and a zero MAD (most ratios identical)
  // would reject every deviation — both cases keep everything.
  [[nodiscard]] std::vector<double> kept() const {
    if (!g_mad || ratios.size() < 5) return ratios;
    std::vector<double> r = ratios;
    std::sort(r.begin(), r.end());
    const double m = r[r.size() / 2];
    std::vector<double> dev;
    dev.reserve(r.size());
    for (double v : r) dev.push_back(std::fabs(v - m));
    std::sort(dev.begin(), dev.end());
    const double mad = dev[dev.size() / 2];
    if (mad == 0.0) return ratios;
    const double cut = 3.5 * 1.4826 * mad;
    std::vector<double> keep;
    keep.reserve(ratios.size());
    for (double v : ratios)
      if (std::fabs(v - m) <= cut) keep.push_back(v);
    return keep;
  }
  [[nodiscard]] std::size_t rejected_outliers() const {
    return ratios.size() - kept().size();
  }
  [[nodiscard]] double ratio_median() const {
    std::vector<double> r = kept();
    std::sort(r.begin(), r.end());
    return r[r.size() / 2];
  }
  [[nodiscard]] double ratio_min() const {
    const std::vector<double> k = kept();
    return *std::min_element(k.begin(), k.end());
  }
  [[nodiscard]] double ratio_max() const {
    const std::vector<double> k = kept();
    return *std::max_element(k.begin(), k.end());
  }
  // Sample variance of the surviving ratios: the spread the interval verdict
  // rests on, in comparable units across rows (ratios are dimensionless).
  [[nodiscard]] double variance() const {
    const std::vector<double> k = kept();
    if (k.size() < 2) return 0.0;
    double mean = 0.0;
    for (double v : k) mean += v;
    mean /= static_cast<double>(k.size());
    double ss = 0.0;
    for (double v : k) ss += (v - mean) * (v - mean);
    return ss / static_cast<double>(k.size() - 1);
  }
  [[nodiscard]] double overhead_pct() const {
    return (ratio_median() - 1.0) * 100.0;
  }
};

void print_row(const char* name, const Agg& agg, double ops) {
  std::printf("%-16s %12.3f s %12.3f s %9.2f %% %10.0f ns/op\n", name,
              agg.base, agg.over, agg.overhead_pct(), agg.base / ops * 1e9);
}

// One Table-I row as a JSON object for the BENCH_table1.json trajectory.
std::string row_json(const char* name, const Agg& agg, double ops) {
  using bench::JsonReport;
  std::string j = "{\"name\":" + obs::json::quote(name);
  j += ",\"backend\":" + obs::json::quote(backend_tag());
  j += ",\"baseline_s\":" + JsonReport::number(agg.base);
  j += ",\"overhaul_s\":" + JsonReport::number(agg.over);
  j += ",\"baseline_ns_per_op\":" + JsonReport::number(agg.base / ops * 1e9);
  j += ",\"overhaul_ns_per_op\":" + JsonReport::number(agg.over / ops * 1e9);
  j += ",\"overhead_pct\":" + JsonReport::number(agg.overhead_pct());
  // Honesty fields: how many repetitions back the median, and the full
  // ratio spread — a row whose [min,max] straddles 1.0 is a noise-floor
  // reading, not a measured overhead, and downstream tooling can tell.
  j += ",\"n\":" + JsonReport::number(static_cast<double>(agg.ratios.size()));
  j += ",\"ratio_median\":" + JsonReport::number(agg.ratio_median());
  j += ",\"ratio_min\":" + JsonReport::number(agg.ratio_min());
  j += ",\"ratio_max\":" + JsonReport::number(agg.ratio_max());
  j += ",\"variance\":" + JsonReport::number(agg.variance());
  j += ",\"rejected_outliers\":" +
       JsonReport::number(static_cast<double>(agg.rejected_outliers()));
  j += ",\"gating\":";
  j += g_gating ? "true" : "false";
  j += "}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool ci = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--ci") == 0) {
      ci = true;
    } else if (std::strcmp(argv[i], "--backend=wl") == 0 ||
               std::strcmp(argv[i], "--backend=wayland") == 0) {
      g_backend = core::DisplayBackendKind::kWayland;
    } else if (std::strcmp(argv[i], "--backend=x11") == 0) {
      g_backend = core::DisplayBackendKind::kX11;
    } else {
      std::fprintf(stderr,
                   "usage: bench_table1 [--quick|--ci] [--backend=x11|wl]\n");
      return 2;
    }
  }
  if (quick && ci) {
    std::fprintf(stderr, "bench_table1: --quick and --ci are exclusive\n");
    return 2;
  }
  const bool wl_mode = g_backend == core::DisplayBackendKind::kWayland;
  if (ci) {
    // CI shape: counts small enough for a gating run, but repetitions and
    // the warmup pass kept so the emitted ratio_min/ratio_max interval is a
    // real spread the bench gate can reason about — unlike --quick, whose
    // single repetition yields a degenerate [r, r] interval.
    g_scale = 20;
    g_mad = true;
    kDeviceOpens /= g_scale;
    kPastes /= g_scale;
    kCaptures /= 5;
    kShmWrites /= g_scale;
    kBonnieFiles /= g_scale;
    std::printf("(--ci: iteration counts divided by %d, 5 repetitions + "
                "warmup, MAD outlier rejection — CI gating shape)\n",
                g_scale);
  }
  if (quick) {
    g_gating = false;
    g_scale = 200;
    kDeviceOpens /= g_scale;
    kPastes /= g_scale;
    kCaptures /= 10;  // already small
    kShmWrites /= g_scale;
    kBonnieFiles /= g_scale;
    std::printf("(--quick: iteration counts divided by %d, 1 repetition — "
                "pipeline smoke, not a measurement)\n",
                g_scale);
  }
  std::printf("Table I: performance overhead of OVERHAUL (backend: %s)\n",
              backend_tag());
  std::printf("(monitor in grant-always mode, exercising the full decision "
              "path; counts scaled from the paper)\n\n");
  if (wl_mode)
    std::printf("(--backend=wl: display-server rows only — the kernel-side "
                "rows are backend-independent)\n\n");
  std::printf("%-16s %14s %14s %11s\n", "Benchmarks", "Baseline", "OVERHAUL",
              "Overhead");

  // Per-repetition ratios; each repetition alternates which side goes
  // first, and the row reports the median ratio (robust to load spikes on
  // shared machines) plus each side's best time.
  const int kReps = quick ? 1 : (ci ? 5 : 7);
  Agg dev, clip, scr, shm, fs_create, fs_stat, fs_delete;

  // Discarded warmup pass: grows the heap and ramps the CPU so the first
  // timed repetition is not systematically slower than later ones. Kept in
  // --ci mode: the gate consumes the ratio interval, which warmup tightens.
  if (!quick) {
    if (!wl_mode) (void)run_device_access(false);
    (void)run_clipboard(false);
    (void)run_screen_capture(false);
    if (!wl_mode) (void)run_bonnie(false);
  }

  for (int rep = 0; rep < kReps; ++rep) {
    const bool base_first = rep % 2 == 0;
    const auto run_pair = [&](auto&& fn, Agg& agg) {
      double b = 0, o = 0;
      if (base_first) {
        b = fn(false);
        o = fn(true);
      } else {
        o = fn(true);
        b = fn(false);
      }
      agg.add(b, o);
    };
    run_pair(run_clipboard, clip);
    run_pair(run_screen_capture, scr);
    if (wl_mode) continue;  // kernel-side rows are backend-independent
    run_pair(run_device_access, dev);
    const auto [shm_base, shm_over] = run_shared_memory_pair();
    shm.add(shm_base, shm_over);
    BonnieResult b{}, o{};
    if (base_first) {
      b = run_bonnie(false);
      o = run_bonnie(true);
    } else {
      o = run_bonnie(true);
      b = run_bonnie(false);
    }
    fs_create.add(b.create_s, o.create_s);
    fs_stat.add(b.stat_s, o.stat_s);
    fs_delete.add(b.delete_s, o.delete_s);
  }

  if (!wl_mode) print_row("Device Access", dev, kDeviceOpens);
  print_row("Clipboard", clip, kPastes);
  print_row("Screen Capture", scr, kCaptures);
  if (!wl_mode) {
    print_row("Shared Memory", shm, kShmWrites);
    const double base_files_s = kBonnieFiles / fs_create.base;
    const double over_files_s = kBonnieFiles / fs_create.over;
    std::printf("%-16s %10.0f f/s %10.0f f/s %9.2f %%\n", "Bonnie++ create",
                base_files_s, over_files_s, fs_create.overhead_pct());
    std::printf("%-16s %12.3f s %12.3f s %9s\n", "  (stat, no hook)",
                fs_stat.base, fs_stat.over, "~0");
    std::printf("%-16s %12.3f s %12.3f s %9s\n", "  (delete)",
                fs_delete.base, fs_delete.over, "~0");
  }

  bench::JsonReport report("table1");
  report.add_raw("quick", quick ? "true" : "false");
  report.add_raw("ci", ci ? "true" : "false");
  report.add("reps", kReps);
  report.add_raw("backend", obs::json::quote(backend_tag()));
  std::string rows;
  if (wl_mode) {
    rows = "[" + row_json("Clipboard", clip, kPastes) + "," +
           row_json("Screen Capture", scr, kCaptures) + "]";
  } else {
    rows = "[" + row_json("Device Access", dev, kDeviceOpens) + "," +
           row_json("Clipboard", clip, kPastes) + "," +
           row_json("Screen Capture", scr, kCaptures) + "," +
           row_json("Shared Memory", shm, kShmWrites) + "," +
           row_json("Bonnie++ create", fs_create, kBonnieFiles) + "," +
           row_json("Bonnie++ stat", fs_stat, kBonnieFiles) + "," +
           row_json("Bonnie++ delete", fs_delete, kBonnieFiles) + "]";
  }
  report.add_raw("rows", rows);
  // The wl run keeps its own trajectory file so a following x11 run (or
  // vice versa) does not clobber it.
  (void)report.write(wl_mode ? "BENCH_table1_wl.json" : "BENCH_table1.json");

  if (wl_mode) {
    std::printf("\nNo paper column for Wayland — the reproduced claim is the "
                "cross-backend one: the same\nmediation (and so the same "
                "near-zero overhead shape) holds behind either display "
                "protocol.\n");
    return 0;
  }
  std::printf("\nPaper's measured column for comparison: 2.17%% / 2.96%% / "
              "2.34%% / 0.63%% / 0.11%%\n");
  std::printf("Expected shape: every row within low single digits of zero — "
              "the paper's \"no discernible\noverhead\" claim. On this "
              "substrate the added per-op cost (a timestamp compare + a\n"
              "netlink query / page-state check) sits at or below the "
              "machine's noise floor, so\nmedians may come out slightly "
              "negative; see bench_micro for isolated per-mechanism costs.\n");
  return 0;
}
