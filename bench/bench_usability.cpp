// §V-B usability study regeneration.
//
// The paper's study: 46 CS students, two tasks.
//  Task 1 — make a Skype call on an Overhaul machine; rate difficulty on a
//           5-point Likert scale (1 = identical to normal Skype).
//           Paper result: all 46 rated it identical (score 1).
//  Task 2 — perform a web search while a hidden background process triggers
//           a blocked camera access + alert; asked afterwards whether they
//           noticed anything unusual.
//           Paper result: 24 interrupted immediately / 16 noticed and
//           reported when prompted / 6 noticed nothing.
//
// Substitution: participants are modelled as attention profiles drawn from
// a seeded RNG; the attention model is calibrated so the *population* (not
// per-run counts) matches the paper's split (24/16/6 ≈ 52% / 35% / 13%).
// What the harness actually verifies mechanically: task 1 produces zero
// user-visible differences (no denials, no prompts), and task 2's alert is
// raised exactly when the hidden process is blocked.
#include <cstdio>

#include "apps/spyware.h"
#include "bench_report.h"
#include "apps/user_model.h"
#include "apps/video_conf.h"
#include "core/system.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

constexpr int kParticipants = 46;


}  // namespace

int main() {
  util::Rng rng(46);
  const apps::AttentionModel attention;  // calibrated to the 24/16/6 split

  int identical_ratings = 0;
  int task1_failures = 0;
  int immediate = 0, prompted = 0, missed = 0;
  int alerts_raised = 0;

  for (int p = 0; p < kParticipants; ++p) {
    // --- Task 1: Skype call under Overhaul ---------------------------------
    core::OverhaulSystem sys;
    auto skype = apps::VideoConfApp::launch(sys).value();
    auto [cx, cy] = skype->click_point();
    sys.input().click(cx, cy);
    sys.advance(sim::Duration::millis(
        static_cast<std::int64_t>(rng.uniform(30, 400))));  // human delay
    auto call = skype->start_call();
    const bool seamless = call.ok();
    if (seamless) {
      ++identical_ratings;  // nothing observable → Likert 1
    } else {
      ++task1_failures;  // would surface as a degraded rating
    }
    skype->end_call();

    // --- Task 2: hidden camera access while browsing -------------------------
    sys.advance(sim::Duration::minutes(1));
    auto spy = sys.launch_daemon("/home/user/.hidden", "hidden").value();
    // Participant browses (interacts with the browser window)...
    auto browser = sys.launch_gui_app("/usr/bin/firefox", "firefox").value();
    const auto& r = sys.xserver().window(browser.window)->rect();
    sys.input().click(r.x + 5, r.y + 5);
    // ...and at a random moment the background process hits the camera.
    sys.advance(sim::Duration::seconds(rng.uniform(5, 90)));
    const std::size_t alerts_before = sys.xserver().alerts().shown_count();
    auto fd = sys.kernel().sys_open(spy, core::OverhaulSystem::camera_path(),
                                    kern::OpenFlags::kRead);
    const bool blocked = !fd.is_ok();
    const bool alerted = sys.xserver().alerts().shown_count() > alerts_before;
    if (blocked && alerted) ++alerts_raised;

    switch (attention.sample(rng)) {
      case apps::AlertReaction::kInterruptsImmediately: ++immediate; break;
      case apps::AlertReaction::kReportsWhenPrompted: ++prompted; break;
      case apps::AlertReaction::kMissesAlert: ++missed; break;
    }
  }

  std::printf("Usability study (46 participants, modelled attention)\n\n");
  std::printf("Task 1: Skype call on an OVERHAUL machine\n");
  std::printf("  %-44s %5s %9s\n", "", "paper", "this run");
  std::printf("  %-44s %5d %9d\n", "rated identical to unmodified Skype (=1)",
              46, identical_ratings);
  std::printf("  %-44s %5d %9d\n", "calls failed / visibly degraded", 0,
              task1_failures);

  std::printf("\nTask 2: hidden camera access during web search\n");
  std::printf("  %-44s %5d %9d\n", "alert raised on blocked access", 46,
              alerts_raised);
  std::printf("  %-44s %5d %9d\n", "interrupted task immediately", 24,
              immediate);
  std::printf("  %-44s %5d %9d\n", "noticed, reported when prompted", 16,
              prompted);
  std::printf("  %-44s %5d %9d\n", "noticed nothing", 6, missed);

  bench::JsonReport report("usability");
  report.add("participants", kParticipants);
  report.add("identical_ratings", identical_ratings);
  report.add("task1_failures", task1_failures);
  report.add("alerts_raised", alerts_raised);
  report.add("interrupted_immediately", immediate);
  report.add("reported_when_prompted", prompted);
  report.add("noticed_nothing", missed);
  (void)report.write("BENCH_usability.json");

  const bool ok = task1_failures == 0 && identical_ratings == kParticipants &&
                  alerts_raised == kParticipants &&
                  immediate + prompted + missed == kParticipants;
  std::printf("\n%s\n", ok ? "Mechanical checks passed (transparency + alert "
                             "delivery); attention split is model-calibrated."
                           : "UNEXPECTED: mechanical checks failed!");
  return ok ? 0 : 1;
}
