// §V-D empirical experiment regeneration: 21 days, two machines.
//
// The paper installs its sample spyware (clipboard poller + screenshotter +
// microphone recorder) on two personal computers, one protected by
// Overhaul, one unmodified, both in daily use for 21 days. Findings:
//   * the protected machine yielded NOTHING to the malware, every attempt
//     detected and blocked (verified from Overhaul's logs);
//   * the unprotected machine leaked screenshots (e-banking, email),
//     clipboard strings (passwords, phone numbers), and voice recordings;
//   * zero legitimate applications were incorrectly blocked in 21 days.
//
// Substitution: the author's daily use becomes a seeded diurnal workload —
// work sessions with clicks, copy/paste, video calls, user-driven
// screenshots — while the spyware wakes every ~10 minutes.
#include <cstdio>

#include "apps/password_manager.h"
#include "apps/spyware.h"
#include "apps/user_model.h"
#include "apps/video_conf.h"
#include "bench_report.h"
#include "core/system.h"
#include "util/audit_report.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

constexpr int kDays = 21;

struct MachineResult {
  apps::Spyware::Attempts attempts;
  apps::Spyware::Loot loot;
  int legit_ops = 0;
  int legit_denied = 0;  // false positives
  std::size_t blocked_logged = 0;
  std::size_t alerts = 0;
  std::uint64_t audit_appended = 0;
  std::uint64_t audit_dropped = 0;  // ring evictions; 0 = 21 days fit the cap
  util::AuditReport report;
  std::string metrics_json;
};

MachineResult run_machine(bool protected_machine, std::uint64_t seed) {
  core::OverhaulSystem sys(protected_machine
                               ? core::OverhaulConfig{}
                               : core::OverhaulConfig::baseline());
  util::Rng rng(seed);

  auto pm = apps::PasswordManagerApp::launch(sys).value();
  auto editor = apps::EditorApp::launch(sys).value();
  auto skype = apps::VideoConfApp::launch(sys).value();
  pm->store_password("bank", "pa55-" + std::to_string(seed));
  auto spy = apps::Spyware::install(sys).value();

  MachineResult result;
  const auto legit = [&](const util::Status& s) {
    ++result.legit_ops;
    if (!s.is_ok()) ++result.legit_denied;
  };
  const auto click = [&](const apps::GuiApp& app) {
    (void)sys.xserver().raise_window(app.client(), app.window());
    auto [cx, cy] = app.click_point();
    sys.input().click(cx, cy);
  };

  const apps::DiurnalSchedule schedule;
  const sim::Timestamp end = sys.clock().now() + sim::Duration::days(kDays);
  sim::Timestamp next_spy = sys.clock().now() + sim::Duration::minutes(10);

  while (sys.clock().now() < end) {
    const bool active = schedule.active_at(sys.clock().now());

    if (active) {
      // A burst of user work.
      const auto activity = rng.next_below(100);
      if (activity < 40) {
        // Copy/paste between the password manager and the editor.
        click(*pm);
        sys.input().press_copy_chord();
        legit(pm->copy_password_to_clipboard("bank"));
        click(*editor);
        sys.input().press_paste_chord();
        auto pasted = editor->paste_from(*pm);
        legit(pasted.is_ok() ? util::Status::ok() : pasted.status());
      } else if (activity < 55) {
        // A video call.
        click(*skype);
        auto call = skype->start_call();
        legit(call.mic);
        legit(call.cam);
        skype->end_call();
      } else if (activity < 65) {
        // A user-driven screenshot from the default tool.
        click(*editor);
        auto img = sys.xserver().screen().get_image(editor->client(),
                                                    x11::kRootWindow);
        legit(img.is_ok() ? util::Status::ok() : img.status());
      } else {
        // Plain typing/clicking with no sensitive access.
        click(*editor);
      }
      sys.advance(schedule.next_gap(sys.clock().now(), rng));
    } else {
      sys.advance(schedule.next_gap(sys.clock().now(), rng));
    }

    // The spyware's periodic sweep (day and night).
    while (sys.clock().now() >= next_spy) {
      (void)spy->try_sniff_clipboard(*pm, pm->pending_clipboard());
      (void)spy->try_screenshot();
      (void)spy->try_record_microphone();
      next_spy = next_spy + sim::Duration::minutes(10);
    }
  }

  result.attempts = spy->attempts();
  result.loot = spy->loot();
  result.alerts = sys.xserver().alerts().shown_count();
  result.blocked_logged = sys.audit().count(util::Decision::kDeny);
  result.audit_appended = sys.audit().total_appended();
  result.audit_dropped = sys.audit().dropped();
  result.report = util::build_report(sys.audit().records());
  result.metrics_json = sys.obs().metrics.to_json();
  return result;
}

}  // namespace

int main() {
  std::printf("21-day empirical experiment (§V-D), seeded diurnal workload\n\n");
  const MachineResult prot = run_machine(true, 21);
  const MachineResult base = run_machine(false, 21);

  std::printf("%-36s %14s %14s\n", "", "OVERHAUL", "unprotected");
  std::printf("%-36s %14d %14d\n", "spyware attempts",
              prot.attempts.total(), base.attempts.total());
  std::printf("%-36s %14zu %14zu\n", "clipboard strings harvested",
              prot.loot.clipboard.size(), base.loot.clipboard.size());
  std::printf("%-36s %14d %14d\n", "screenshots harvested",
              prot.loot.screenshots, base.loot.screenshots);
  std::printf("%-36s %14d %14d\n", "voice samples harvested",
              prot.loot.mic_samples, base.loot.mic_samples);
  std::printf("%-36s %14d %14d\n", "legitimate user-driven ops",
              prot.legit_ops, base.legit_ops);
  std::printf("%-36s %14d %14d\n", "  of which incorrectly blocked",
              prot.legit_denied, base.legit_denied);
  std::printf("%-36s %14zu %14s\n", "blocked attempts in the audit log",
              prot.blocked_logged, "-");

  if (!base.loot.clipboard.empty()) {
    std::printf("\nsample of data the unprotected machine leaked: \"%s\"\n",
                base.loot.clipboard.front().c_str());
  }

  // The paper's §V-D log investigation: which applications used which
  // protected resources on the Overhaul machine.
  std::printf("\nOVERHAUL machine, audit-log report (who used what):\n%s",
              prot.report.to_string().c_str());

  const auto machine_json = [](const MachineResult& m) {
    return "{\"spyware_attempts\":" + std::to_string(m.attempts.total()) +
           ",\"clipboard_harvested\":" + std::to_string(m.loot.clipboard.size()) +
           ",\"screenshots_harvested\":" + std::to_string(m.loot.screenshots) +
           ",\"mic_samples_harvested\":" + std::to_string(m.loot.mic_samples) +
           ",\"legit_ops\":" + std::to_string(m.legit_ops) +
           ",\"legit_denied\":" + std::to_string(m.legit_denied) +
           ",\"blocked_logged\":" + std::to_string(m.blocked_logged) +
           ",\"audit_appended\":" + std::to_string(m.audit_appended) +
           ",\"audit_ring_dropped\":" + std::to_string(m.audit_dropped) +
           ",\"metrics\":" + m.metrics_json + "}";
  };
  bench::JsonReport json("longterm");
  json.add("days", kDays);
  json.add_raw("overhaul", machine_json(prot));
  json.add_raw("baseline", machine_json(base));
  (void)json.write("BENCH_longterm.json");

  // Every screenshot/mic attempt lands in the audit log as a denial; the
  // clipboard attempts that found no selection owner fail earlier in the
  // protocol (BadAtom) and are not policy decisions.
  const bool ok = prot.loot.empty() && prot.legit_denied == 0 &&
                  base.loot.total() > 0 &&
                  prot.blocked_logged >=
                      static_cast<std::size_t>(prot.attempts.screenshots +
                                               prot.attempts.mic);
  std::printf("\n%s\n",
              ok ? "Matches the paper: protected machine leaked nothing, "
                   "zero false positives over 21 days; unprotected machine "
                   "thoroughly spied on."
                 : "UNEXPECTED: long-term result diverges from the paper!");
  return ok ? 0 : 1;
}
