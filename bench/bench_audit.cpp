// Binary-vs-text audit append microbenchmark (DESIGN.md §16).
//
// Replays the same decision stream into the old text `util::AuditLog` (an
// AuditRecord with two heap std::strings per append, the path every mediated
// decision used to pay) and into the binary `audit::Sink` (two warm intern
// lookups + one 64-byte ring store). Both rings run full — the fleet's
// steady state — so the text path pays its per-append allocate/free churn
// and the binary path its masked overwrite.
//
// The gate is the ratio: binary append must be >= 3x faster than the text
// path (enforced in optimized builds; advisory otherwise). Absolute ns/op
// are machine-dependent; the ratio is the reproduced quantity. The report
// also records the memory side: live bytes held by the binary ring vs the
// text-equivalent footprint of the same records.
//
// Usage: bench_audit [--quick]   (writes BENCH_audit.json; exit 1 on gate
// fail)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string_view>

#include "audit/sink.h"
#include "bench_report.h"
#include "util/audit_log.h"

using namespace overhaul;

namespace {

int g_append_iters = 4'000'000;
int g_reps = 5;

// Ring capacity for both sides: small enough that the steady-state
// (ring-full) regime dominates, large enough to defeat trivial caching.
constexpr std::size_t kRingCapacity = 1u << 14;

// A realistic decision mix: a handful of distinct apps and resources, the
// shape §V-D reports (few comms, logged millions of times).
constexpr std::string_view kComms[] = {
    "videoconf", "browser", "screenshot", "recorder",
    "passwdmgr", "spyware", "terminal",   "launcher",
};
constexpr std::string_view kDetails[] = {
    "/dev/v4l/by-id/usb-integrated-cam-video-index0",
    "/dev/snd/by-id/usb-mic-array-00",
    "selection:CLIPBOARD:targets=UTF8_STRING",
    "screen:root-window:1920x1080+0+0",
};

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double best_ns_per_op(int ops, const std::function<void()>& fn) {
  double best = 1e99;
  fn();  // warmup: fills the ring, interns every string
  for (int rep = 0; rep < g_reps; ++rep)
    best = std::min(best, time_seconds(fn));
  return best / ops * 1e9;
}

// The text path exactly as PermissionMonitor::check used to build it: a
// fresh AuditRecord whose comm/detail are copied into heap strings.
double run_text(util::AuditLog* log) {
  return best_ns_per_op(g_append_iters, [&] {
    for (int i = 0; i < g_append_iters; ++i) {
      util::AuditRecord rec;
      rec.time_ns = static_cast<std::int64_t>(i) * 1'000;
      rec.pid = 100 + (i & 7);
      rec.comm = kComms[i & 7];
      rec.op = static_cast<util::Op>(i % static_cast<int>(util::kOpCount));
      rec.decision = (i & 1) != 0 ? util::Decision::kGrant
                                  : util::Decision::kDeny;
      rec.interaction_age_ns = (i & 1023) * 1'000;
      rec.detail = kDetails[i & 3];
      log->append(std::move(rec));
    }
  });
}

double run_binary(audit::Sink* sink) {
  return best_ns_per_op(g_append_iters, [&] {
    for (int i = 0; i < g_append_iters; ++i) {
      sink->append_decision(
          static_cast<std::int64_t>(i) * 1'000, 100 + (i & 7), kComms[i & 7],
          static_cast<util::Op>(i % static_cast<int>(util::kOpCount)),
          (i & 1) != 0 ? util::Decision::kGrant : util::Decision::kDeny,
          (i & 1023) * 1'000, kDetails[i & 3]);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  if (quick) {
    // /20 keeps quick sub-second but leaves the ring-full steady state
    // dominant (200k appends vs a 16k ring) so the gated ratio stays stable.
    g_append_iters /= 20;
    g_reps = 3;
    std::printf("(--quick: iteration counts divided by 20, 3 repetitions)\n");
  }

  std::printf("Audit append: text AuditLog vs binary ring (best of %d reps, "
              "ring capacity %zu)\n\n",
              g_reps, kRingCapacity);

  util::AuditLog text_log;
  text_log.set_capacity(kRingCapacity);
  const double text_ns = run_text(&text_log);

  audit::Sink sink(kRingCapacity);
  const double bin_ns = run_binary(&sink);

  const double speedup = bin_ns > 0 ? text_ns / bin_ns : 0;
  const double mem_bin = static_cast<double>(sink.memory_bytes());
  const double mem_text = static_cast<double>(sink.text_equiv_bytes());
  const double mem_ratio = mem_bin > 0 ? mem_text / mem_bin : 0;

  std::printf("%-16s %10.1f ns/op   (AuditRecord + 2 heap strings, "
              "push/pop churn)\n",
              "text-append", text_ns);
  std::printf("%-16s %10.1f ns/op   (2 warm interns + 64-byte ring store)\n",
              "binary-append", bin_ns);
  std::printf("%-16s %10zu bytes  (records + intern payload)\n",
              "binary-memory", sink.memory_bytes());
  std::printf("%-16s %10zu bytes  (same records as text-log entries)\n",
              "text-memory", sink.text_equiv_bytes());
  std::printf("\nbinary append speedup: %.2fx (gate: >= 3x)\n", speedup);

  bench::JsonReport report("audit");
  report.add_raw("quick", quick ? "true" : "false");
  report.add("reps", g_reps);
  report.add("ring_capacity", kRingCapacity);
  report.add("append_iters", g_append_iters);
  report.add("text_append_ns_per_op", text_ns);
  report.add("binary_append_ns_per_op", bin_ns);
  report.add("binary_speedup", speedup);
  report.add("binary_memory_bytes", sink.memory_bytes());
  report.add("text_equiv_memory_bytes", sink.text_equiv_bytes());
  report.add("memory_ratio", mem_ratio);
  (void)report.write("BENCH_audit.json");

  // Sanity in every build: both sides saw the same stream and the ring
  // obeyed its bound.
  if (sink.size() != kRingCapacity ||
      sink.total_appended() != text_log.total_appended()) {
    std::fprintf(stderr,
                 "bench_audit: GATE FAILED — stream mismatch (binary saw "
                 "%llu appends, text %llu)\n",
                 static_cast<unsigned long long>(sink.total_appended()),
                 static_cast<unsigned long long>(text_log.total_appended()));
    return 1;
  }
#ifdef NDEBUG
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "bench_audit: GATE FAILED — binary append only %.2fx faster "
                 "than the text path (want >= 3x)\n",
                 speedup);
    return 1;
  }
#else
  std::printf("(unoptimized build: speedup gate advisory, not enforced)\n");
#endif
  return 0;
}
