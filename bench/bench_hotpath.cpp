// Mediation fast-path microbenchmark (DESIGN.md §10): ns/op for the four
// operations the zero-allocation work targets —
//   lookup           — pid → TaskStruct* through the slab's dense index
//   check            — PermissionMonitor::check, grant path, audit/trace off
//   notify           — send_interaction with coalescing disabled (one kernel
//                      crossing per event)
//   coalesced-notify — send_interaction with coalescing on (10 ms skew, 1 ms
//                      event spacing → ~10 events per crossing)
//
// The headline gate is the notify / coalesced-notify ratio: the coalescing
// stage must make a same-pid notification burst at least ~3× cheaper per
// event than the per-event crossing path. Absolute ns/op are machine-
// dependent; the ratio is the reproduced quantity.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_report.h"
#include "kern/kernel.h"
#include "kern/netlink.h"
#include "kern/permission_monitor.h"
#include "kern/process_table.h"
#include "util/rng.h"

using namespace overhaul;

namespace {

// --quick shrinks the loops to a pipeline smoke (check.sh --bench); the
// reported numbers are then not measurements.
int g_lookup_iters = 4'000'000;
int g_check_iters = 2'000'000;
int g_notify_iters = 1'000'000;
int g_reps = 5;

volatile std::uint64_t g_sink = 0;

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Best-of-reps wall time for `fn`, converted to ns per `ops`.
double best_ns_per_op(int ops, const std::function<void()>& fn) {
  double best = 1e99;
  fn();  // warmup
  for (int rep = 0; rep < g_reps; ++rep) best = std::min(best, time_seconds(fn));
  return best / ops * 1e9;
}

// --- lookup ------------------------------------------------------------------

double run_lookup(double* handle_get_ns) {
  sim::Clock clock;
  kern::ProcessTable table;
  std::vector<kern::Pid> pids;
  std::vector<kern::TaskHandle> handles;
  for (int i = 0; i < 1'023; ++i) pids.push_back(table.fork(1).value());
  for (auto pid : pids) handles.push_back(table.handle_of(pid));

  // Pre-shuffled access order so the branch predictor sees realistic chaos
  // but the timed loop does no RNG work.
  util::Rng rng(42);
  std::vector<std::uint32_t> order(8192);
  for (auto& o : order)
    o = static_cast<std::uint32_t>(rng.next_below(pids.size()));

  const double lookup_ns = best_ns_per_op(g_lookup_iters, [&] {
    std::uint64_t acc = 0;
    for (int i = 0; i < g_lookup_iters; ++i) {
      const auto* t = table.lookup_live(pids[order[i & 8191]]);
      acc += static_cast<std::uint64_t>(t->pid);
    }
    g_sink = g_sink + acc;
  });
  *handle_get_ns = best_ns_per_op(g_lookup_iters, [&] {
    std::uint64_t acc = 0;
    for (int i = 0; i < g_lookup_iters; ++i) {
      const auto* t = table.get_live(handles[order[i & 8191]]);
      acc += static_cast<std::uint64_t>(t->pid);
    }
    g_sink = g_sink + acc;
  });
  return lookup_ns;
}

// --- check -------------------------------------------------------------------

double run_check() {
  sim::Clock clock;
  kern::ProcessTable table;
  audit::Sink audit;
  kern::PermissionMonitor monitor(table, clock, audit);
  monitor.set_audit_enabled(false);  // Table-I bench config: no log, no trace
  const kern::Pid app = table.fork(1).value();
  clock.advance(sim::Duration::seconds(1));
  if (!monitor.record_interaction(app, clock.now())) return -1;
  const sim::Timestamp ts = clock.now();

  return best_ns_per_op(g_check_iters, [&] {
    std::uint64_t grants = 0;
    for (int i = 0; i < g_check_iters; ++i) {
      grants += monitor.check(app, util::Op::kMicrophone, ts, "/dev/mic0") ==
                        util::Decision::kGrant
                    ? 1u
                    : 0u;
    }
    g_sink = g_sink + grants;
  });
}

// --- notify / coalesced-notify ----------------------------------------------
//
// Same workload both times: a same-pid burst with 1 ms spacing (mouse-motion
// cadence). With coalescing off every event is a kernel crossing; with the
// 10 ms skew window ~10 events collapse into one.

double run_notify(bool coalesce) {
  sim::Clock clock;
  kern::KernelConfig cfg;
  cfg.audit = false;
  cfg.netlink_coalesce = coalesce;
  cfg.netlink_coalesce_skew = sim::Duration::millis(10);
  kern::Kernel kernel(clock, cfg);
  const kern::Pid xorg =
      kernel.sys_spawn(1, "/usr/lib/xorg/Xorg", "Xorg").value();
  auto channel = kernel.netlink().connect(xorg).value();
  const kern::Pid app = kernel.sys_spawn(1, "/usr/bin/app", "app").value();

  const auto burst = [&] {
    for (int i = 0; i < g_notify_iters; ++i) {
      clock.advance(sim::Duration::millis(1));
      (void)channel->send_interaction({app, clock.now()});
    }
  };
  const double ns = best_ns_per_op(g_notify_iters, burst);
  // Sanity: the coalescing run actually merged (≥80% of events absorbed).
  if (coalesce &&
      channel->stats().interactions_merged * 5 <
          channel->stats().interactions_sent * 4) {
    std::fprintf(stderr, "warning: coalescing merged only %llu of %llu events\n",
                 static_cast<unsigned long long>(
                     channel->stats().interactions_merged),
                 static_cast<unsigned long long>(
                     channel->stats().interactions_sent));
  }
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  if (quick) {
    g_lookup_iters /= 200;
    g_check_iters /= 200;
    g_notify_iters /= 200;
    g_reps = 1;
    std::printf("(--quick: iteration counts divided by 200, 1 repetition — "
                "pipeline smoke, not a measurement)\n");
  }

  std::printf("Mediation fast path (best of %d reps)\n\n", g_reps);

  double handle_get_ns = 0;
  const double lookup_ns = run_lookup(&handle_get_ns);
  const double check_ns = run_check();
  const double notify_ns = run_notify(false);
  const double coalesced_ns = run_notify(true);
  const double speedup = coalesced_ns > 0 ? notify_ns / coalesced_ns : 0;

  std::printf("%-18s %10.1f ns/op   (pid -> task, 1023-task slab)\n",
              "lookup", lookup_ns);
  std::printf("%-18s %10.1f ns/op   (generation-checked TaskHandle)\n",
              "handle-get", handle_get_ns);
  std::printf("%-18s %10.1f ns/op   (grant path, audit/trace off)\n",
              "check", check_ns);
  std::printf("%-18s %10.1f ns/op   (every event crosses)\n",
              "notify", notify_ns);
  std::printf("%-18s %10.1f ns/op   (10 ms skew, 1 ms spacing)\n",
              "coalesced-notify", coalesced_ns);
  std::printf("\ncoalescing speedup: %.2fx per event (gate: >= 3x)\n", speedup);

  bench::JsonReport report("hotpath");
  report.add_raw("quick", quick ? "true" : "false");
  report.add("reps", g_reps);
  report.add("lookup_ns_per_op", lookup_ns);
  report.add("handle_get_ns_per_op", handle_get_ns);
  report.add("check_ns_per_op", check_ns);
  report.add("notify_ns_per_op", notify_ns);
  report.add("coalesced_notify_ns_per_op", coalesced_ns);
  report.add("coalesce_speedup", speedup);
  (void)report.write("BENCH_hotpath.json");
  return 0;
}
