// §V-C applicability & false-positive assessment regeneration.
//
// Runs the 58-application device/screen pool and the 50-application
// clipboard pool through their user-driven workflows on an Overhaul system
// and reports the paper's findings:
//   * no application breaks (0 false positives on user-driven accesses);
//   * exactly one spurious alert — Skype probing the camera at launch;
//   * delayed screenshots are denied by design (documented limitation).
#include <cstdio>
#include <map>

#include "apps/catalog.h"
#include "bench_report.h"
#include "core/system.h"

using namespace overhaul;

int main() {
  std::printf("Applicability & false-positive assessment (§V-C)\n\n");
  bench::JsonReport report("applicability");

  // --- device/screen pool -----------------------------------------------------
  {
    core::OverhaulSystem sys;
    std::map<apps::AppCategory, int> by_category;
    int broken = 0, spurious = 0, delayed = 0, grants = 0, denials = 0;
    for (const auto& entry : apps::device_catalog()) {
      ++by_category[entry.category];
      const auto r = apps::run_catalog_entry(sys, entry);
      broken += r.functionality_broken();
      spurious += r.spurious_alert;
      delayed += r.delayed_capture_denied;
      grants += r.grants;
      denials += r.denials;
      if (r.functionality_broken() || r.spurious_alert) {
        std::printf("  note: %-22s %s%s\n", r.name.c_str(),
                    r.functionality_broken() ? "BROKEN " : "",
                    r.spurious_alert ? "spurious-alert(launch camera probe)"
                                     : "");
      }
    }
    std::printf("\nDevice/screen pool:\n");
    std::printf("  %-42s %6zu\n", "applications tested",
                apps::device_catalog().size());
    for (const auto& [cat, n] : by_category) {
      std::printf("    %-40s %6d\n",
                  std::string(apps::category_name(cat)).c_str(), n);
    }
    std::printf("  %-42s %6d   (paper: 0)\n", "broken applications", broken);
    std::printf("  %-42s %6d   (paper: 1, Skype)\n", "spurious alerts",
                spurious);
    std::printf("  %-42s %6d   (by design)\n",
                "delayed screenshots denied", delayed);
    std::printf("  %-42s %6d / %d\n", "user-driven ops granted/denied",
                grants, denials);
    report.add("device_pool_apps", apps::device_catalog().size());
    report.add("device_pool_broken", broken);
    report.add("device_pool_spurious_alerts", spurious);
    report.add("device_pool_delayed_denied", delayed);
    report.add("device_pool_grants", grants);
    report.add("device_pool_denials", denials);
    report.add_raw("device_pool_metrics", sys.obs().metrics.to_json());
  }

  // --- clipboard pool -------------------------------------------------------------
  {
    core::OverhaulSystem sys;
    int broken = 0, grants = 0, denials = 0;
    for (const auto& entry : apps::clipboard_catalog()) {
      const auto r = apps::run_catalog_entry(sys, entry);
      broken += r.functionality_broken();
      grants += r.grants;
      denials += r.denials;
    }
    // §V-C: clipboard verification is done from the logs, not alerts.
    const auto copy_grants =
        sys.audit().count(util::Op::kCopy, util::Decision::kGrant);
    const auto paste_grants =
        sys.audit().count(util::Op::kPaste, util::Decision::kGrant);
    std::printf("\nClipboard pool:\n");
    std::printf("  %-42s %6zu\n", "applications tested",
                apps::clipboard_catalog().size());
    std::printf("  %-42s %6d   (paper: 0)\n", "broken applications", broken);
    std::printf("  %-42s %6d / %d\n", "user-driven ops granted/denied",
                grants, denials);
    std::printf("  %-42s %6zu / %zu\n", "audited copy/paste grants",
                copy_grants, paste_grants);
    report.add("clipboard_pool_apps", apps::clipboard_catalog().size());
    report.add("clipboard_pool_broken", broken);
    report.add("clipboard_pool_grants", grants);
    report.add("clipboard_pool_denials", denials);
    report.add("audited_copy_grants", copy_grants);
    report.add("audited_paste_grants", paste_grants);
    report.add_raw("clipboard_pool_metrics", sys.obs().metrics.to_json());
  }

  std::printf("\nShape check vs paper: 58 + 50 apps, zero broken, one "
              "spurious alert, delayed shots unsupported.\n");
  (void)report.write("BENCH_applicability.json");
  return 0;
}
