// BENCH_*.json writer: every bench harness dumps its headline numbers (and,
// where a live system is at hand, an obs metrics snapshot) next to its text
// output, so repeated runs accumulate a machine-readable perf trajectory.
//
// The report is one flat JSON object built key-by-key in insertion order.
// Values are either scalars (escaped here) or pre-rendered JSON fragments
// (obs::MetricsRegistry::to_json(), nested row arrays built by the bench).
// check.sh --metrics validates emitted files with the strict parser in
// src/obs/json.h, so keep emission boring.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace overhaul::bench {

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) {
    add("bench", bench_name);
  }

  void add(const std::string& key, const std::string& value) {
    add_raw(key, obs::json::quote(value));
  }
  void add(const std::string& key, const char* value) {
    add_raw(key, obs::json::quote(value));
  }
  void add(const std::string& key, double value) {
    add_raw(key, number(value));
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  void add(const std::string& key, T value) {
    add_raw(key, std::to_string(value));
  }

  // `json` must already be a valid JSON value (object, array, or scalar).
  void add_raw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += obs::json::quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

  // Writes the report and reports the path on stdout, matching the text
  // output the benches already print. Returns false on I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench report: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string body = to_json();
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (ok) std::printf("\nwrote %s\n", path.c_str());
    return ok;
  }

  // JSON has no inf/nan; unmeasured slots render as 0.
  static std::string number(double value) {
    if (!std::isfinite(value)) return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace overhaul::bench
