// bench_lint: overhaul-lint full-tree analysis, cold vs warm.
//
// The analyzer went whole-program in PR 5 (call graph + reachability/taint
// rules over every file under src/), which only stays viable as a tier-1
// ctest check if the incremental cache keeps the steady-state cost near the
// cost of hashing the tree. This bench times a cold run (empty cache: every
// file tokenized, extracted, and serialized) against a warm run (every FileIR
// served from the cache) over the real src/ tree and gates on the ratio:
// warm must be >= 3x faster than cold, or the cache has rotted into
// decoration and `lint.tree` is paying full parse cost on every build.
//
// Usage: bench_lint [--quick]   (writes BENCH_lint.json; exit 1 on gate fail)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>

#include "bench_report.h"
#include "lint.h"
#include "rules_flow.h"

namespace {

using overhaul::lint::TreeOptions;
using overhaul::lint::TreeResult;

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const double s = time_seconds(fn);
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int reps = quick ? 2 : 5;
  const char* cache_path = "BENCH_lint_cache.txt";

  std::string error;
  const auto config =
      overhaul::lint::load_rules_file(OVERHAUL_LINT_RULES, &error);
  if (!config.has_value()) {
    std::fprintf(stderr, "bench_lint: %s\n", error.c_str());
    return 2;
  }
  const auto baseline =
      overhaul::lint::load_baseline_file(OVERHAUL_LINT_BASELINE, &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "bench_lint: %s\n", error.c_str());
    return 2;
  }

  TreeOptions opts;
  opts.roots = {OVERHAUL_LINT_SRC_ROOT};
  opts.config = *config;
  opts.rules_hash = 1;  // any constant: cold runs delete the cache anyway
  opts.cache_path = cache_path;
  opts.baseline = *baseline;

  TreeResult last;
  const double cold_s = best_seconds(reps, [&] {
    std::remove(cache_path);
    last = overhaul::lint::run_tree(opts);
  });
  const std::size_t cold_reparsed = last.stats.reparsed;

  // Prime once, then measure steady state.
  last = overhaul::lint::run_tree(opts);
  const double warm_s =
      best_seconds(reps, [&] { last = overhaul::lint::run_tree(opts); });
  const std::size_t warm_reparsed = last.stats.reparsed;
  std::remove(cache_path);

  const double speedup = warm_s > 0 ? cold_s / warm_s : 0;
  std::printf("bench_lint: full-tree analysis over %s\n",
              OVERHAUL_LINT_SRC_ROOT);
  std::printf("%-16s %8.2f ms   (%zu files reparsed)\n", "cold",
              cold_s * 1e3, cold_reparsed);
  std::printf("%-16s %8.2f ms   (%zu files reparsed)\n", "warm",
              warm_s * 1e3, warm_reparsed);
  std::printf("%zu files, %zu functions, %zu call edges, %zu findings\n",
              last.stats.files, last.stats.functions, last.stats.call_edges,
              last.findings.size());
  std::printf("\ncache speedup: %.2fx (gate: >= 3x)\n", speedup);

  overhaul::bench::JsonReport report("lint");
  report.add_raw("quick", quick ? "true" : "false");
  report.add("reps", reps);
  report.add("files", last.stats.files);
  report.add("functions", last.stats.functions);
  report.add("call_edges", last.stats.call_edges);
  report.add("findings", last.findings.size());
  report.add("cold_ms", cold_s * 1e3);
  report.add("warm_ms", warm_s * 1e3);
  report.add("warm_reparsed", warm_reparsed);
  report.add("cache_speedup", speedup);
  (void)report.write("BENCH_lint.json");

  // A warm run that reparses anything means the cache is broken outright;
  // that gate holds in every build type. The speedup ratio is only a
  // meaningful measurement in optimized builds (-O0 skews the parse/analyze
  // balance), so unoptimized builds report it as advisory.
  if (warm_reparsed != 0) {
    std::fprintf(stderr,
                 "bench_lint: GATE FAILED — warm run reparsed %zu files "
                 "(want 0)\n",
                 warm_reparsed);
    return 1;
  }
#ifdef NDEBUG
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "bench_lint: GATE FAILED — warm run only %.2fx faster than "
                 "cold (want >= 3x)\n",
                 speedup);
    return 1;
  }
#else
  std::printf("(unoptimized build: speedup gate advisory, not enforced)\n");
#endif
  return 0;
}
