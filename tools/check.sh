#!/usr/bin/env bash
# CI-style driver: configure + build + mediation lint + sanitized tests in
# one command.
#
#   tools/check.sh                 # ubsan-asan preset (the default gate)
#   tools/check.sh asan            # any preset from CMakePresets.json
#   tools/check.sh tsan
#   tools/check.sh --metrics       # additionally smoke the BENCH_*.json path
#   tools/check.sh --bench         # additionally smoke the perf benches
#                                  # (bench_hotpath, bench_table1, bench_lint,
#                                  # bench_fleet, bench_audit + the
#                                  # trajectory diff gate)
#   JOBS=4 tools/check.sh          # override parallelism
#
# --metrics and --bench combine, in any order, before the preset name.
# Exits nonzero on the first failing stage. clang-tidy runs only when the
# binary is installed (the container image does not ship it).
set -euo pipefail

cd "$(dirname "$0")/.."

METRICS=0
BENCH=0
while [ $# -gt 0 ]; do
  case "$1" in
    --metrics) METRICS=1; shift ;;
    --bench)   BENCH=1; shift ;;
    *) break ;;
  esac
done

PRESET="${1:-ubsan-asan}"
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="build-${PRESET}"
[ "$PRESET" = "default" ] && BUILD_DIR="build"

step() { printf '\n=== %s ===\n' "$*"; }

step "configure (preset: $PRESET)"
cmake --preset "$PRESET"

step "build"
cmake --build --preset "$PRESET" -j "$JOBS"

step "overhaul-lint (mediation + concurrency + domain invariants R1-R13, SARIF validated)"
"./$BUILD_DIR/tools/lint/overhaul-lint" \
  --root src --rules tools/lint/overhaul_lint.rules \
  --baseline tools/lint/overhaul_lint.baseline \
  --cache "$BUILD_DIR/overhaul_lint.cache" \
  --sarif "$BUILD_DIR/overhaul_lint.sarif" --stats
"./$BUILD_DIR/tools/obs/json_check" "$BUILD_DIR/overhaul_lint.sarif"
# The SARIF must carry the concurrency and domain rule metadata — a
# regression that silently drops R8-R13 would otherwise pass the
# clean-tree run.
for rule in R8 R9 R10 R11 R12 R13; do
  grep -q "\"id\":\"$rule\"" "$BUILD_DIR/overhaul_lint.sarif" || {
    echo "missing rule $rule in overhaul_lint.sarif" >&2; exit 1; }
done

step "ctest (preset: $PRESET)"
ctest --preset "$PRESET" -j "$JOBS"

# The Wayland-backend battery runs again by name so a regression in the
# second backend is called out as its own stage even when the full suite
# above already covered it (and so sanitizer presets gate it explicitly).
step "ctest -R wl (Wayland backend battery)"
(cd "$BUILD_DIR" && ctest -R '^wl' --output-on-failure -j "$JOBS")

# Same rationale for the concurrency & determinism battery: the analyzer's
# dataflow suites plus the whole-tree R8-R10 run gate as a named stage.
step "ctest lint concurrency battery (R8-R10)"
(cd "$BUILD_DIR" &&
  ctest -R '^lint\.(concurrency|DataflowRules|ExtractMembers|ExtractFlow|Explain|Cache)' \
    --output-on-failure -j "$JOBS")

# And for the domain-aware battery: clock-domain soundness, decision/audit
# completeness, and barrier discipline (R11-R13) gate as a named stage —
# the domain-typed taint suites plus the whole-tree lint.domains run.
step "ctest lint domain battery (R11-R13)"
(cd "$BUILD_DIR" &&
  ctest -R '^lint\.(domains|DomainRules|DecisionAudit|BarrierLanes)' \
    --output-on-failure -j "$JOBS")

# The binary audit pipeline gates as its own stage: ring/intern semantics,
# snapshot round-trip + corrupt-stream rejection, and the facade's
# line-for-line equivalence with the text log (incl. the audit_dump CLI run
# as a subprocess) — DESIGN.md §16.
step "ctest -R audit (binary audit pipeline battery)"
(cd "$BUILD_DIR" && ctest -R '^audit\.' --output-on-failure -j "$JOBS")

# The multi-seat fleet battery gates as its own stage: shard lifecycle and
# isolation plus the cross-shard P2 oracle property test (DESIGN.md §14),
# and the parallel-vs-serial engine equivalence test (DESIGN.md §15).
step "ctest -R fleet (multi-seat fleet battery)"
(cd "$BUILD_DIR" && ctest -R '^fleet' --output-on-failure -j "$JOBS")

# The parallel engine's race gate: the fleet + simulation-core batteries
# (whose tests spawn up to 8-lane worker pools) rebuilt and re-run under
# ThreadSanitizer. Skipped when this whole run already uses the tsan preset.
if [ "$PRESET" != "tsan" ]; then
  step "tsan engine battery (fleet.* + sim.* under ThreadSanitizer)"
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j "$JOBS" --target fleet_test sim_test
  (cd build-tsan && ctest -R '^(fleet|sim)\.' --output-on-failure -j "$JOBS")
fi

if [ "$METRICS" = 1 ]; then
  step "metrics smoke (bench_table1 --quick + strict JSON validation)"
  (cd "$BUILD_DIR" && ./bench/bench_table1 --quick >/dev/null &&
    ./tools/obs/json_check BENCH_table1.json)
fi

if [ "$BENCH" = 1 ]; then
  step "bench smoke (bench_hotpath + bench_table1 wl, --quick)"
  (cd "$BUILD_DIR" &&
    ./bench/bench_hotpath --quick >/dev/null &&
    ./tools/obs/json_check BENCH_hotpath.json &&
    ./bench/bench_table1 --quick --backend=wl >/dev/null &&
    ./tools/obs/json_check BENCH_table1_wl.json)

  # Gated Table-I run: --ci keeps 5 repetitions + warmup so each row's
  # ratio_min/ratio_max interval is real, then bench_gate passes rows whose
  # interval straddles 1.0 (noise) or sits below it (improvement) and fails
  # only when a whole interval exceeds the threshold — a CI-bounds verdict,
  # not a point-estimate one.
  step "bench_table1 --ci + bench_gate (interval gate on ratio CI bounds)"
  (cd "$BUILD_DIR" &&
    ./bench/bench_table1 --ci >/dev/null &&
    ./tools/obs/json_check BENCH_table1.json &&
    ./tools/obs/bench_gate --threshold=1.25 --min-reps=5 BENCH_table1.json)

  step "bench_fleet --quick (multi-seat fleet smoke + BENCH_fleet.json)"
  (cd "$BUILD_DIR" &&
    ./bench/bench_fleet --quick &&
    ./tools/obs/json_check BENCH_fleet.json)

  # Binary audit append vs the text log path: the ratio is the reproduced
  # quantity (gated >= 3x inside the bench in optimized builds), and the
  # JSON feeds the trajectory diff below.
  step "bench_audit --quick (binary vs text append gate + BENCH_audit.json)"
  (cd "$BUILD_DIR" &&
    ./bench/bench_audit --quick &&
    ./tools/obs/json_check BENCH_audit.json)

  # Trajectory gate: this run's headline metrics (fleet decisions/sec, the
  # hot-path ns/op family, the binary audit speedup) against the committed
  # previous values. Catches order-of-magnitude mistakes; refresh with
  # bench_diff --update when a change legitimately moves a metric.
  step "bench trajectory diff (vs tools/bench_baseline.json)"
  (cd "$BUILD_DIR" &&
    ./tools/obs/bench_diff --baseline=../tools/bench_baseline.json \
      --threshold=25 BENCH_fleet.json BENCH_hotpath.json BENCH_audit.json)

  step "bench_lint (analyzer cold/warm cache gate, --quick)"
  (cd "$BUILD_DIR" &&
    ./bench/bench_lint --quick &&
    ./tools/obs/json_check BENCH_lint.json)
fi

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (src/ + tools/)"
  # The preset build dirs carry compile_commands.json when the generator
  # supports it; fall back to a plain include flag otherwise.
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    git ls-files 'src/*.cpp' 'tools/*.cpp' |
      xargs clang-tidy -p "$BUILD_DIR" --quiet
  else
    git ls-files 'src/*.cpp' 'tools/*.cpp' |
      xargs clang-tidy --quiet -- -std=c++20 -Isrc -Itools/lint
  fi
else
  step "clang-tidy not installed — skipping (config: .clang-tidy)"
fi

step "all checks passed"
