// SARIF 2.1.0 serialization of lint findings, for CI upload and editor
// ingestion. Kept dependency-free (its own minimal JSON escaping) so the lint
// library stays standalone; tools/check.sh round-trips the output through the
// strict obs::json validator.
#pragma once

#include <string>
#include <vector>

#include "lint.h"

namespace overhaul::lint {

// One self-contained SARIF 2.1.0 log: a single run, one result per finding
// (level "error"), rule metadata for R1–R7 plus the io/sup hygiene rules.
// `tool_version` lands in tool.driver.version.
std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& tool_version);

}  // namespace overhaul::lint
