// Flow-sensitive intra-procedural dataflow rules over the FlowStmt CFG
// (lint.h), feeding the cross-file call graph (callgraph.h) for the
// inter-procedural half of R8.
//
//   R8  shared-state discipline  every mutable member of a declared
//       concurrency root (r8.root) carries an ownership annotation from
//       src/util/annotations.h, and OVERHAUL_SHARED members are written only
//       in — or call-graph-reachable from — their declared accessors.
//   R9  deterministic ordering   taint introduced by iterating nondet-ordered
//       containers (r9.nondet type tokens) or calling nondet sources
//       (r9.source) must never flow into an audit/metrics/trace/decision
//       sink (r9.sink). Union-at-merge forward taint over the CFG;
//       `--explain R9:<fn>` replays the witness chain.
//   R10 lock discipline          mutex acquisition respects the declared
//       global order (r10.order, outermost first), OVERHAUL_GUARDED_BY
//       members are written only with their guard held, and functions under
//       an r10.holds contract are only called with that mutex held.
//       Intersection-at-merge must-hold analysis; RAII guards release at
//       their synthetic block-exit node.
//   R11 clock-domain soundness   every tracked Timestamp value carries a
//       domain fact (shard-local vs fleet), seeded at mint/translation calls
//       (r11.local / r11.fleet) and at always-domained identifiers
//       (r11.local_var / r11.fleet_var). A statement that mixes both domains
//       with no translator call, or that feeds a wrong-domain value into a
//       domain-typed sink (r11.sink_local / r11.sink_fleet) without
//       translating, is a finding; `--explain R11[:<fn>]` prints the
//       mint → flow → mixing-site witness chain.
//
// All three run on the cached IR: CFG extraction happens at parse time (cold
// side), and each rule prechecks for its trigger vocabulary before running a
// fixed point, so a clean warm run stays within the bench_lint ≥3x gate.
#pragma once

#include <string>
#include <vector>

#include "callgraph.h"

namespace overhaul::lint {

void run_r8(const ProgramIR& program, const CallGraph& graph,
            const RuleConfig& config, std::vector<Finding>* findings);

void run_r9(const ProgramIR& program, const RuleConfig& config,
            std::vector<Finding>* findings);

void run_r10(const ProgramIR& program, const RuleConfig& config,
             std::vector<Finding>* findings);

void run_r11(const ProgramIR& program, const RuleConfig& config,
             std::vector<Finding>* findings);

// `--explain R9:<function>`: replays the taint analysis for every definition
// matching `function` and prints each nondet-origin → sink witness chain.
// Sets *exit_code to 2 when no definition matches, 0 otherwise.
std::string explain_r9(const ProgramIR& program, const RuleConfig& config,
                       const std::string& function, int* exit_code);

// `--explain R11[:<function>]`: replays the domain analysis and prints every
// tracked value's mint → flow provenance plus each mixing/sink witness chain.
// With a function, sets *exit_code to 2 when no definition matches; with no
// function, covers every domain-relevant definition. 0 otherwise.
std::string explain_r11(const ProgramIR& program, const RuleConfig& config,
                        const std::string& function, int* exit_code);

}  // namespace overhaul::lint
