#include "ir.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>

namespace overhaul::lint {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::string trim(std::string s) {
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

const std::vector<std::string>& assign_ops() {
  static const std::vector<std::string> ops = {"=",  "+=", "-=",  "*=",
                                               "/=", "%=", "&=",  "|=",
                                               "^=", "<<=", ">>="};
  return ops;
}

}  // namespace

std::vector<Suppression> scan_suppressions(const std::string& source) {
  std::vector<Suppression> out;
  std::istringstream iss(source);
  std::string line;
  int lineno = 0;
  static const std::string kMarker = "overhaul-lint:";
  while (std::getline(iss, line)) {
    ++lineno;
    const auto m = line.find(kMarker);
    if (m == std::string::npos) continue;
    const auto a = line.find("allow(", m + kMarker.size());
    if (a == std::string::npos) continue;
    const auto close = line.find(')', a);
    if (close == std::string::npos) {
      out.push_back({lineno, "", ""});  // malformed; reported as hygiene
      continue;
    }
    const std::string body = line.substr(a + 6, close - a - 6);
    Suppression s;
    s.line = lineno;
    const auto colon = body.find(':');
    if (colon == std::string::npos) {
      s.rule = trim(body);
    } else {
      s.rule = trim(body.substr(0, colon));
      s.reason = trim(body.substr(colon + 1));
    }
    out.push_back(std::move(s));
  }
  return out;
}

FileIR build_file_ir(const std::string& path, const std::string& source,
                     const RuleConfig& config) {
  FileIR ir;
  ir.path = path;
  ir.source_hash = fnv1a64(source);

  const std::vector<Token> toks = tokenize(source);
  FileFacts facts = extract_facts(toks);
  ir.functions = std::move(facts.functions);
  ir.pointer_fields = std::move(facts.pointer_fields);
  ir.members = std::move(facts.members);

  const auto in = [](const std::string& s, const std::vector<std::string>& v) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (!config.r3_fields.empty() && in(t.text, config.r3_fields) &&
        i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
        in(toks[i + 1].text, assign_ops())) {
      ir.guarded_writes.push_back({t.line, t.text});
    }
    if (!config.r4_banned.empty() && in(t.text, config.r4_banned)) {
      ir.banned_idents.push_back({t.line, t.text});
    }
  }

  ir.suppressions = scan_suppressions(source);
  return ir;
}

// --- incremental cache -------------------------------------------------------

namespace {

constexpr const char* kCacheMagic = "overhaul-lint-cache v4";

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// A field may not contain tabs or newlines; scrub rather than corrupt the
// record framing (such names would be extractor bugs anyway).
std::string field(std::string s) {
  std::replace(s.begin(), s.end(), '\t', ' ');
  std::replace(s.begin(), s.end(), '\n', ' ');
  return s.empty() ? "-" : s;
}

// Appends into a caller-owned buffer: parse_cache runs this once per record
// over ~10k lines, and reusing the vector keeps the warm path allocation-free.
void split_tabs(std::string_view line, std::vector<std::string_view>* out) {
  out->clear();
  std::size_t start = 0;
  while (true) {
    const auto tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      out->push_back(line.substr(start));
      return;
    }
    out->push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool parse_int(std::string_view s, int* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_hex64(std::string_view s, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out, 16);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string unfield(std::string_view s) {
  return s == "-" ? std::string() : std::string(s);
}

// List-valued fields: comma-joined, '-' when empty. Identifiers (and
// successor indices) never contain commas, so the join is unambiguous.
std::string join_list(const std::vector<std::string>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += v[i];
  }
  return out;
}

std::string join_ints(const std::vector<int>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

void split_list(std::string_view s, std::vector<std::string>* out) {
  out->clear();
  if (s == "-") return;
  std::size_t start = 0;
  while (true) {
    const auto comma = s.find(',', start);
    if (comma == std::string_view::npos) {
      out->push_back(std::string(s.substr(start)));
      return;
    }
    out->push_back(std::string(s.substr(start, comma - start)));
    start = comma + 1;
  }
}

bool split_int_list(std::string_view s, std::vector<int>* out) {
  out->clear();
  if (s == "-") return true;
  std::size_t start = 0;
  while (true) {
    const auto comma = s.find(',', start);
    const std::string_view part =
        comma == std::string_view::npos ? s.substr(start)
                                        : s.substr(start, comma - start);
    int v = 0;
    if (!parse_int(part, &v)) return false;
    out->push_back(v);
    if (comma == std::string_view::npos) return true;
    start = comma + 1;
  }
}

}  // namespace

std::string serialize_cache(const std::vector<FileIR>& files,
                            std::uint64_t config_hash) {
  std::ostringstream out;
  out << kCacheMagic << ' ' << hex(config_hash) << '\n';
  for (const FileIR& f : files) {
    out << "F\t" << hex(f.source_hash) << '\t' << field(f.path) << '\n';
    for (const FunctionInfo& fn : f.functions) {
      out << "f\t" << fn.line << '\t' << (fn.ret_is_ptr ? 1 : 0) << '\t'
          << static_cast<int>(fn.lane_anno) << '\t' << field(fn.ret_type)
          << '\t' << field(fn.name) << '\t' << field(fn.qualified_name)
          << '\n';
      for (const CallSite& c : fn.call_sites)
        out << "c\t" << c.line << '\t' << field(c.qualifier) << '\t'
            << field(c.name) << '\n';
      for (const FlowStmt& d : fn.flow)
        out << "d\t" << d.line << '\t' << static_cast<int>(d.kind) << '\t'
            << join_ints(d.succ) << '\t' << join_list(d.defs) << '\t'
            << join_list(d.uses) << '\t' << join_list(d.calls) << '\t'
            << field(d.decl_type) << '\t' << join_list(d.locks) << '\t'
            << join_list(d.unlocks) << '\n';
    }
    for (const PointerField& p : f.pointer_fields)
      out << "p\t" << p.line << '\t' << field(p.type) << '\t' << field(p.name)
          << '\n';
    for (const MemberDecl& m : f.members)
      out << "m\t" << m.line << '\t' << (m.is_mutable ? 1 : 0) << '\t'
          << static_cast<int>(m.anno) << '\t' << field(m.klass) << '\t'
          << field(m.type) << '\t' << field(m.name) << '\t' << field(m.guard)
          << '\n';
    for (const TokenHit& w : f.guarded_writes)
      out << "w\t" << w.line << '\t' << field(w.text) << '\n';
    for (const TokenHit& b : f.banned_idents)
      out << "b\t" << b.line << '\t' << field(b.text) << '\n';
    for (const Suppression& s : f.suppressions)
      out << "s\t" << s.line << '\t' << field(s.rule) << '\t'
          << field(s.reason) << '\n';
  }
  return out.str();
}

bool parse_cache(const std::string& text, std::uint64_t config_hash,
                 std::vector<FileIR>* out, std::size_t* invalidated) {
  out->clear();
  if (invalidated != nullptr) *invalidated = 0;
  std::string_view rest(text);
  const auto next_line = [&rest](std::string_view* line) {
    if (rest.empty()) return false;
    const auto nl = rest.find('\n');
    if (nl == std::string_view::npos) {
      *line = rest;
      rest = {};
    } else {
      *line = rest.substr(0, nl);
      rest.remove_prefix(nl + 1);
    }
    return true;
  };

  std::string_view line;
  if (!next_line(&line)) return false;
  {
    std::istringstream header{std::string(line)};
    std::string word, tail, hash_hex;
    header >> word >> tail >> hash_hex;
    std::uint64_t stored = 0;
    const bool hash_ok = parse_hex64(hash_hex, &stored);
    if (word + " " + tail != kCacheMagic || !hash_ok ||
        stored != config_hash) {
      // Count the entries the config/version mismatch throws away: every "F"
      // record in the blob was a warm file that now must reparse cold. Feeds
      // the `invalidated_by_config` stat.
      if (invalidated != nullptr && word + " " + tail == kCacheMagic &&
          hash_ok && stored != config_hash) {
        std::size_t n = 0;
        for (std::string_view r = rest; !r.empty();) {
          if (r.substr(0, 2) == "F\t") ++n;
          const auto nl = r.find('\n');
          if (nl == std::string_view::npos) break;
          r.remove_prefix(nl + 1);
        }
        *invalidated = n;
      }
      return false;
    }
  }

  FileIR* cur = nullptr;
  FunctionInfo* cur_fn = nullptr;
  auto bad = [&] {
    out->clear();
    return false;
  };
  std::vector<std::string_view> fields;
  while (next_line(&line)) {
    if (line.empty()) continue;
    split_tabs(line, &fields);
    const std::string_view tag = fields[0];
    int ln = 0;
    if (tag == "F") {
      if (fields.size() != 3) return bad();
      FileIR f;
      if (!parse_hex64(fields[1], &f.source_hash)) return bad();
      f.path = std::string(fields[2]);
      out->push_back(std::move(f));
      cur = &out->back();
      cur_fn = nullptr;
    } else if (tag == "f") {
      if (cur == nullptr || fields.size() != 7 || !parse_int(fields[1], &ln))
        return bad();
      FunctionInfo fn;
      fn.line = ln;
      fn.ret_is_ptr = fields[2] == "1";
      int anno = 0;
      if (!parse_int(fields[3], &anno) || anno < 0 || anno > 2) return bad();
      fn.lane_anno = static_cast<FnAnno>(anno);
      fn.ret_type = unfield(fields[4]);
      fn.name = unfield(fields[5]);
      fn.qualified_name = unfield(fields[6]);
      cur->functions.push_back(std::move(fn));
      cur_fn = &cur->functions.back();
    } else if (tag == "c") {
      if (cur_fn == nullptr || fields.size() != 4 || !parse_int(fields[1], &ln))
        return bad();
      CallSite c;
      c.line = ln;
      c.qualifier = unfield(fields[2]);
      c.name = unfield(fields[3]);
      cur_fn->calls.push_back(c.name);
      cur_fn->call_sites.push_back(std::move(c));
    } else if (tag == "d") {
      if (cur_fn == nullptr || fields.size() != 10 ||
          !parse_int(fields[1], &ln))
        return bad();
      FlowStmt d;
      d.line = ln;
      int kind = 0;
      if (!parse_int(fields[2], &kind) || kind < 0 || kind > 3) return bad();
      d.kind = static_cast<FlowStmt::Kind>(kind);
      if (!split_int_list(fields[3], &d.succ)) return bad();
      split_list(fields[4], &d.defs);
      split_list(fields[5], &d.uses);
      split_list(fields[6], &d.calls);
      d.decl_type = unfield(fields[7]);
      split_list(fields[8], &d.locks);
      split_list(fields[9], &d.unlocks);
      cur_fn->flow.push_back(std::move(d));
    } else if (tag == "p") {
      if (cur == nullptr || fields.size() != 4 || !parse_int(fields[1], &ln))
        return bad();
      cur->pointer_fields.push_back(
          {unfield(fields[2]), unfield(fields[3]), ln});
    } else if (tag == "m") {
      if (cur == nullptr || fields.size() != 8 || !parse_int(fields[1], &ln))
        return bad();
      MemberDecl m;
      m.line = ln;
      m.is_mutable = fields[2] == "1";
      int anno = 0;
      if (!parse_int(fields[3], &anno) || anno < 0 || anno > 3) return bad();
      m.anno = static_cast<MemberAnno>(anno);
      m.klass = unfield(fields[4]);
      m.type = unfield(fields[5]);
      m.name = unfield(fields[6]);
      m.guard = unfield(fields[7]);
      cur->members.push_back(std::move(m));
    } else if (tag == "w" || tag == "b") {
      if (cur == nullptr || fields.size() != 3 || !parse_int(fields[1], &ln))
        return bad();
      auto& dst = tag == "w" ? cur->guarded_writes : cur->banned_idents;
      dst.push_back({ln, unfield(fields[2])});
    } else if (tag == "s") {
      if (cur == nullptr || fields.size() != 4 || !parse_int(fields[1], &ln))
        return bad();
      cur->suppressions.push_back({ln, unfield(fields[2]), unfield(fields[3])});
    } else {
      return bad();
    }
  }
  return true;
}

}  // namespace overhaul::lint
