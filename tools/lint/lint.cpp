#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace overhaul::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we must not split: `=` vs `==` decides whether
// an `interaction_ts` token is a write (R3), and `::` glues qualified names.
const char* kPunct3[] = {"<<=", ">>=", "->*", "..."};
const char* kPunct2[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||",
                         "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=",
                         "|=", "^=", "++", "--"};

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    // Conditional-compilation tricks are out of scope for the lint.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Raw string literal (minimal: R"delim( ... )delim").
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      for (std::size_t k = i; k < stop; ++k)
        if (src[k] == '\n') ++line;
      out.push_back({TokKind::kString, "<raw-string>", line});
      i = stop;
      continue;
    }
    // String / char literal: contents are opaque.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        else if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.push_back({TokKind::kString, quote == '"' ? "<string>" : "<char>",
                     start_line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      out.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E'))))
        ++j;
      if (j < n && src[j] == '.') {  // floating point
        ++j;
        while (j < n && is_ident_char(src[j])) ++j;
      }
      out.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: maximal munch over the known multi-char set.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (src.compare(i, 3, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (src.compare(i, 2, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// --- function extraction -----------------------------------------------------

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",        "catch",
      "return", "sizeof", "throw",  "static_assert", "alignof",
      "new",    "delete", "do",     "else",          "case",
      "goto",   "decltype"};
  return kw;
}

bool is_specifier(const std::string& t) {
  return t == "const" || t == "noexcept" || t == "override" || t == "final" ||
         t == "mutable" || t == "constexpr";
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

}  // namespace

std::vector<FunctionInfo> extract_functions(const std::vector<Token>& toks) {
  std::vector<FunctionInfo> out;
  const std::size_t n = toks.size();

  // Skips past a balanced (...) run; `j` must point at the opener.
  auto skip_parens = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    for (; j < n; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")") && --depth == 0) return j + 1;
    }
    return j;
  };
  auto skip_braces = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    for (; j < n; ++j) {
      if (is_punct(toks[j], "{")) ++depth;
      else if (is_punct(toks[j], "}") && --depth == 0) return j + 1;
    }
    return j;
  };

  // Parses a (possibly ::-qualified) identifier chain starting at `j`.
  // Returns one-past-the-chain; fills name/qname/line.
  auto parse_chain = [&](std::size_t j, std::string* qname, std::string* name,
                         int* name_line) -> std::size_t {
    qname->clear();
    while (j < n) {
      if (is_punct(toks[j], "~")) {  // destructor
        *qname += "~";
        ++j;
        continue;
      }
      if (toks[j].kind != TokKind::kIdent) break;
      *qname += toks[j].text;
      *name = toks[j].text;
      *name_line = toks[j].line;
      ++j;
      if (j + 1 < n && is_punct(toks[j], "::") &&
          (toks[j + 1].kind == TokKind::kIdent || is_punct(toks[j + 1], "~"))) {
        *qname += "::";
        ++j;
        continue;
      }
      break;
    }
    return j;
  };

  // Consumes a function body starting at its '{'; records calls.
  auto parse_body = [&](std::size_t j, FunctionInfo* fn) -> std::size_t {
    int depth = 0;
    while (j < n) {
      const Token& t = toks[j];
      if (is_punct(t, "{")) {
        ++depth;
        ++j;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        ++j;
        if (depth == 0) return j;
        continue;
      }
      if (t.kind == TokKind::kIdent || is_punct(t, "~")) {
        std::string qname, name;
        int line = t.line;
        const std::size_t after = parse_chain(j, &qname, &name, &line);
        if (after > j) {
          if (after < n && is_punct(toks[after], "(") &&
              control_keywords().count(name) == 0) {
            fn->calls.push_back(name);
          }
          j = after;
          continue;
        }
      }
      ++j;
    }
    return j;
  };

  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent && !is_punct(t, "~")) {
      ++i;
      continue;
    }
    if (t.text == "template") {  // skip the parameter list <...>
      ++i;
      if (i < n && is_punct(toks[i], "<")) {
        int depth = 0;
        for (; i < n; ++i) {
          if (is_punct(toks[i], "<")) ++depth;
          else if (is_punct(toks[i], ">") && --depth == 0) {
            ++i;
            break;
          }
        }
      }
      continue;
    }

    std::string qname, name;
    int name_line = t.line;
    const std::size_t after = parse_chain(i, &qname, &name, &name_line);
    if (after == i || after >= n || !is_punct(toks[after], "(") ||
        control_keywords().count(name) != 0) {
      i = std::max(after, i + 1);
      continue;
    }

    // candidate definition header: NAME ( ... )
    std::size_t j = skip_parens(after);
    bool is_definition = false;
    while (j < n && !is_definition) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kIdent && is_specifier(u.text)) {
        ++j;
      } else if (is_punct(u, "->")) {  // trailing return type
        ++j;
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";"))
          ++j;
      } else if (is_punct(u, ":")) {  // constructor member-init list
        ++j;
        int pd = 0;
        while (j < n) {
          const Token& v = toks[j];
          if (is_punct(v, "(")) ++pd;
          else if (is_punct(v, ")")) --pd;
          else if (is_punct(v, "{")) {
            if (pd > 0) {
              j = skip_braces(j);
              continue;
            }
            // Brace-init of a member (`a_{x}`) directly follows a name;
            // the body brace follows ')' / '}' / the list itself.
            if (j > 0 && (toks[j - 1].kind == TokKind::kIdent ||
                          is_punct(toks[j - 1], ">"))) {
              j = skip_braces(j);
              continue;
            }
            break;  // function body
          } else if (is_punct(v, ";")) {
            break;  // malformed; bail out
          }
          ++j;
        }
      } else if (is_punct(u, "{")) {
        is_definition = true;
      } else {
        break;  // declaration, call expression, `= default`, etc.
      }
    }

    if (!is_definition) {
      i = std::max(j, after + 1);
      continue;
    }

    FunctionInfo fn;
    fn.qualified_name = qname;
    fn.name = name;
    fn.line = name_line;
    i = parse_body(j, &fn);
    out.push_back(std::move(fn));
  }
  return out;
}

// --- rule configuration ------------------------------------------------------

namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream iss(s);
  std::vector<std::string> out;
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

}  // namespace

bool path_matches(const std::string& raw_path, const std::string& raw_entry) {
  const std::string path = normalize_path(raw_path);
  const std::string entry = normalize_path(raw_entry);
  if (entry.empty()) return false;
  if (entry.back() == '/') {
    // Directory prefix: must appear at the start or after a separator.
    if (path.compare(0, entry.size(), entry) == 0) return true;
    return path.find("/" + entry) != std::string::npos;
  }
  if (path == entry) return true;
  const std::string anchored = "/" + entry;
  return path.size() > anchored.size() &&
         path.compare(path.size() - anchored.size(), anchored.size(),
                      anchored) == 0;
}

namespace {

bool matches_any(const std::string& path,
                 const std::vector<std::string>& entries) {
  return std::any_of(entries.begin(), entries.end(), [&](const auto& e) {
    return path_matches(path, e);
  });
}

}  // namespace

std::optional<RuleConfig> parse_rules(const std::string& text,
                                      std::string* error) {
  RuleConfig cfg;
  std::istringstream iss(text);
  std::string raw;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr)
      *error = "rules:" + std::to_string(lineno) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(iss, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    const auto words = split_ws(raw);
    if (words.empty()) continue;
    const std::string& key = words[0];
    const std::vector<std::string> vals(words.begin() + 1, words.end());
    if (vals.empty()) return fail("key '" + key + "' needs a value");

    auto append = [&](std::vector<std::string>& dst) {
      dst.insert(dst.end(), vals.begin(), vals.end());
    };

    if (key == "r1.file") append(cfg.r1_files);
    else if (key == "r1.send_fn") append(cfg.r1_send_fns);
    else if (key == "r1.recv_fn") append(cfg.r1_recv_fns);
    else if (key == "r1.send_via") append(cfg.r1_send_via);
    else if (key == "r1.recv_via") append(cfg.r1_recv_via);
    else if (key == "r1.allow") append(cfg.r1_allow);
    else if (key == "r2.point") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
            parts[2].empty())
          return fail("r2.point wants file:function:call1|call2, got '" + v +
                      "'");
        MediationPoint p;
        p.file = parts[0];
        p.function = parts[1];
        p.calls = split_on(parts[2], '|');
        cfg.r2_points.push_back(std::move(p));
      }
    } else if (key == "r2.allow") append(cfg.r2_allow);
    else if (key == "r3.field") append(cfg.r3_fields);
    else if (key == "r3.allow") append(cfg.r3_allow);
    else if (key == "r4.banned") append(cfg.r4_banned);
    else if (key == "r4.exempt") append(cfg.r4_exempt);
    else return fail("unknown key '" + key + "'");
  }
  return cfg;
}

std::optional<RuleConfig> load_rules_file(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open rules file: " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_rules(buf.str(), error);
}

// --- analysis ----------------------------------------------------------------

namespace {

// Assignment operators: any of these directly after the guarded field means
// the code writes it without going through the approved API.
const std::set<std::string>& assign_ops() {
  static const std::set<std::string> ops = {"=",  "+=", "-=",  "*=",  "/=",
                                            "%=", "&=", "|=",  "^=",  "<<=",
                                            ">>=", "++", "--"};
  return ops;
}

bool calls_one_of(const FunctionInfo& fn,
                  const std::vector<std::string>& wanted) {
  return std::any_of(wanted.begin(), wanted.end(), [&](const auto& w) {
    return std::find(fn.calls.begin(), fn.calls.end(), w) != fn.calls.end();
  });
}

std::string join(const std::vector<std::string>& v, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += sep;
    out += v[i];
  }
  return out;
}

bool in_list(const std::string& s, const std::vector<std::string>& v) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// R2 function match: exact unqualified or qualified-suffix.
bool function_matches(const FunctionInfo& fn, const std::string& want) {
  if (fn.name == want || fn.qualified_name == want) return true;
  const std::string suffix = "::" + want;
  return fn.qualified_name.size() > suffix.size() &&
         fn.qualified_name.compare(fn.qualified_name.size() - suffix.size(),
                                   suffix.size(), suffix) == 0;
}

}  // namespace

std::vector<Finding> analyze_file(const std::string& path,
                                  const std::string& source,
                                  const RuleConfig& cfg) {
  std::vector<Finding> findings;
  const std::vector<Token> toks = tokenize(source);

  const bool needs_functions =
      (matches_any(path, cfg.r1_files) && !matches_any(path, cfg.r1_allow)) ||
      std::any_of(cfg.r2_points.begin(), cfg.r2_points.end(),
                  [&](const auto& p) { return path_matches(path, p.file); });
  std::vector<FunctionInfo> fns;
  if (needs_functions) fns = extract_functions(toks);

  // R1: IPC interposition completeness.
  if (matches_any(path, cfg.r1_files) && !matches_any(path, cfg.r1_allow)) {
    for (const auto& fn : fns) {
      if (in_list(fn.name, cfg.r1_send_fns) &&
          !calls_one_of(fn, cfg.r1_send_via)) {
        findings.push_back(
            {path, fn.line, "R1",
             "send interposition point '" + fn.qualified_name +
                 "' never calls any of: " + join(cfg.r1_send_via, ", ")});
      }
      if (in_list(fn.name, cfg.r1_recv_fns) &&
          !calls_one_of(fn, cfg.r1_recv_via)) {
        findings.push_back(
            {path, fn.line, "R1",
             "receive interposition point '" + fn.qualified_name +
                 "' never calls any of: " + join(cfg.r1_recv_via, ", ")});
      }
    }
  }

  // R2: named mediation points must reach the permission monitor.
  if (!matches_any(path, cfg.r2_allow)) {
    for (const auto& point : cfg.r2_points) {
      if (!path_matches(path, point.file)) continue;
      const auto it =
          std::find_if(fns.begin(), fns.end(), [&](const FunctionInfo& fn) {
            return function_matches(fn, point.function);
          });
      if (it == fns.end()) {
        findings.push_back(
            {path, 1, "R2",
             "mediation point '" + point.function +
                 "' not found (renamed away? update overhaul_lint.rules)"});
      } else if (!calls_one_of(*it, point.calls)) {
        findings.push_back(
            {path, it->line, "R2",
             "'" + it->qualified_name +
                 "' serves a mediated resource but never calls any of: " +
                 join(point.calls, ", ")});
      }
    }
  }

  // R3: guarded-field writes outside the approved API files.
  if (!cfg.r3_fields.empty() && !matches_any(path, cfg.r3_allow)) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          !in_list(toks[i].text, cfg.r3_fields))
        continue;
      const Token& next = toks[i + 1];
      if (next.kind == TokKind::kPunct && assign_ops().count(next.text) > 0) {
        findings.push_back(
            {path, toks[i].line, "R3",
             "raw write to '" + toks[i].text +
                 "' — use adopt_interaction()/clear_interaction() or the "
                 "fork-copy path"});
      }
    }
  }

  // R4: banned raw clock/time primitives.
  if (!cfg.r4_banned.empty() && !matches_any(path, cfg.r4_exempt)) {
    for (const auto& tok : toks) {
      if (tok.kind == TokKind::kIdent && in_list(tok.text, cfg.r4_banned)) {
        findings.push_back(
            {path, tok.line, "R4",
             "banned raw time primitive '" + tok.text +
                 "' — all simulation time flows through sim::Clock"});
      }
    }
  }

  return findings;
}

std::vector<Finding> run_lint(const std::vector<std::string>& roots,
                              const RuleConfig& cfg,
                              std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(normalize_path(root));
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp")
        files.push_back(normalize_path(it->path().string()));
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned != nullptr) *files_scanned = files.size();

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      findings.push_back({file, 0, "io", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto fs_findings = analyze_file(file, buf.str(), cfg);
    findings.insert(findings.end(),
                    std::make_move_iterator(fs_findings.begin()),
                    std::make_move_iterator(fs_findings.end()));
  }

  // A mediation point whose file vanished from the scan set must not pass
  // silently — deleting or renaming the file is exactly the regression R2
  // exists to catch.
  for (const auto& point : cfg.r2_points) {
    const bool seen = std::any_of(files.begin(), files.end(), [&](const auto& f) {
      return path_matches(f, point.file);
    });
    if (!seen) {
      findings.push_back(
          {point.file, 0, "R2",
           "mediation file not found under scan roots (moved or deleted?)"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace overhaul::lint
