#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "ir.h"

namespace overhaul::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we must not split: `=` vs `==` decides whether
// an `interaction_ts` token is a write (R3), and `::` glues qualified names.
const char* kPunct3[] = {"<<=", ">>=", "->*", "..."};
const char* kPunct2[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||",
                         "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=",
                         "|=", "^=", "++", "--"};

// Raw-string-literal prefixes, longest first (u8R before uR/UR/LR/R).
const char* kRawPrefixes[] = {"u8R", "uR", "UR", "LR", "R"};

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  // Raw string literal R"delim( ... )delim" (any standard prefix). `plen` is
  // the prefix length including the R. Returns false when the text at `i`
  // is not a well-formed raw-string opener.
  auto try_raw_string = [&](std::size_t plen) -> bool {
    std::size_t j = i + plen + 1;  // past prefix and opening quote
    std::string delim;
    while (j < n && src[j] != '(') {
      const char d = src[j];
      // The delimiter may not contain spaces, parens, backslash, or newline
      // (and is at most 16 chars); anything else is not a raw string.
      if (d == ')' || d == '\\' || d == '"' || std::isspace(
              static_cast<unsigned char>(d)) || delim.size() >= 16)
        return false;
      delim += d;
      ++j;
    }
    if (j >= n) return false;
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src.find(closer, j);
    const std::size_t stop = end == std::string::npos ? n : end + closer.size();
    const int start_line = line;
    for (std::size_t k = i; k < stop; ++k)
      if (src[k] == '\n') ++line;
    out.push_back({TokKind::kString, "<raw-string>", start_line});
    i = stop;
    return true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    // Conditional-compilation tricks are out of scope for the lint.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Raw string literal, with or without an encoding prefix. Checked before
    // plain identifiers so `LR"(...)"` does not tokenize as ident + string.
    if (is_ident_start(c)) {
      bool raw = false;
      for (const char* p : kRawPrefixes) {
        const std::size_t plen = std::char_traits<char>::length(p);
        if (src.compare(i, plen, p) == 0 && i + plen < n &&
            src[i + plen] == '"') {
          // Only a raw string if the prefix is not glued to a longer
          // identifier (`FooR"x"` is ident FooR then a string).
          if (i > 0 && is_ident_char(src[i - 1])) break;
          if (try_raw_string(plen)) {
            raw = true;
            break;
          }
        }
      }
      if (raw) continue;
    }
    // String / char literal: contents are opaque.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        else if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.push_back({TokKind::kString, quote == '"' ? "<string>" : "<char>",
                     start_line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      out.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E'))))
        ++j;
      if (j < n && src[j] == '.') {  // floating point
        ++j;
        while (j < n && is_ident_char(src[j])) ++j;
      }
      out.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: maximal munch over the known multi-char set.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (src.compare(i, 3, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (src.compare(i, 2, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// --- function extraction -----------------------------------------------------

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",        "catch",
      "return", "sizeof", "throw",  "static_assert", "alignof",
      "new",    "delete", "do",     "else",          "case",
      "goto",   "decltype"};
  return kw;
}

bool is_specifier(const std::string& t) {
  return t == "const" || t == "noexcept" || t == "override" || t == "final" ||
         t == "mutable" || t == "constexpr";
}

// Leading declaration specifiers skipped when recovering the return type.
bool is_decl_specifier(const std::string& t) {
  return t == "const" || t == "constexpr" || t == "inline" || t == "static" ||
         t == "virtual" || t == "explicit" || t == "friend" || t == "typename";
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

}  // namespace

// --- control-flow extraction (R8-R10 raw material) ---------------------------

namespace {

const std::set<std::string>& assign_op_set() {
  static const std::set<std::string> ops = {"=",  "+=", "-=", "*=",  "/=", "%=",
                                            "&=", "|=", "^=", "<<=", ">>="};
  return ops;
}

// Member-function calls that mutate their receiver: `channels_.push_back(x)`
// counts as a write to `channels_` for the R8 accessor discipline.
const std::set<std::string>& mutator_methods() {
  static const std::set<std::string> m = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
      "erase",     "clear",        "insert",   "emplace",    "resize",
      "assign",    "reset"};
  return m;
}

// RAII lock-guard types: declaring one acquires its constructor arguments
// and releases them at the end of the enclosing block.
const std::set<std::string>& raii_lock_types() {
  static const std::set<std::string> t = {"lock_guard", "scoped_lock",
                                          "unique_lock", "shared_lock"};
  return t;
}

bool is_local_decl_specifier(const std::string& t) {
  return t == "const" || t == "constexpr" || t == "static" || t == "auto" ||
         t == "unsigned" || t == "signed" || t == "volatile" ||
         t == "mutable" || t == "register" || t == "typename" ||
         t == "thread_local";
}

// Builds FunctionInfo::flow from a body token range. Deliberately statement-
// grained: defs/uses are the base identifiers of access chains, if/loop heads
// become branch nodes with edges into their arms (plus a loop back edge), and
// return/break/continue/throw terminate their path. Precise enough for the
// R8-R10 tripwires, cheap enough to run at parse time and ride the
// incremental cache.
class FlowBuilder {
 public:
  explicit FlowBuilder(const std::vector<Token>& toks) : toks_(toks) {}

  std::vector<FlowStmt> build(std::size_t begin, std::size_t end) {
    stmts_.clear();
    std::size_t j = begin;
    (void)parse_block(&j, end);
    return std::move(stmts_);
  }

 private:
  // A parsed region: its entry statement (-1: transparent/empty) and the
  // statements that fall through to whatever follows it.
  struct Part {
    int entry = -1;
    std::vector<int> exits;
  };

  // Runaway backstop: a pathological body stops growing its CFG rather than
  // bloating the cache (the analyses simply see a truncated graph).
  static constexpr std::size_t kMaxStmts = 2048;

  int add_stmt(FlowStmt s) {
    if (stmts_.size() >= kMaxStmts) return -1;
    auto dedupe = [](std::vector<std::string>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    dedupe(&s.defs);
    dedupe(&s.uses);
    dedupe(&s.calls);
    dedupe(&s.locks);
    dedupe(&s.unlocks);
    stmts_.push_back(std::move(s));
    return static_cast<int>(stmts_.size()) - 1;
  }

  void link(const std::vector<int>& from, int to) {
    if (to < 0) return;
    for (const int f : from)
      if (f >= 0) stmts_[f].succ.push_back(to);
  }

  // `*j` points at '{'. Consumes through the matching '}'.
  Part parse_block(std::size_t* j, std::size_t end) {
    Part out;
    std::vector<int> prev;
    bool started = false;
    std::vector<std::string> raii;  // mutexes released when this block closes
    if (*j < end && is_punct(toks_[*j], "{")) ++*j;
    while (*j < end && !is_punct(toks_[*j], "}")) {
      const std::size_t before = *j;
      Part p = parse_stmt(j, end, &raii);
      if (*j <= before) ++*j;  // safety: always make progress
      if (p.entry < 0) continue;
      if (!started) {
        out.entry = p.entry;
        started = true;
      } else {
        link(prev, p.entry);
      }
      prev = std::move(p.exits);
    }
    const int close_line =
        *j < end ? toks_[*j].line : (end > 0 ? toks_[end - 1].line : 0);
    if (*j < end) ++*j;  // consume '}'
    if (!raii.empty()) {
      // Synthetic scope-exit release for the block's RAII guards.
      FlowStmt rel;
      rel.line = close_line;
      rel.unlocks = raii;
      const int idx = add_stmt(std::move(rel));
      if (idx >= 0) {
        link(prev, idx);
        if (!started) {
          out.entry = idx;
          started = true;
        }
        prev = {idx};
      }
    }
    if (started) out.exits = std::move(prev);
    return out;
  }

  Part parse_stmt(std::size_t* j, std::size_t end,
                  std::vector<std::string>* raii) {
    if (*j >= end) return {};
    const Token& t = toks_[*j];
    if (is_punct(t, "{")) return parse_block(j, end);
    if (is_punct(t, ";")) {
      ++*j;
      return {};
    }
    if (t.kind == TokKind::kIdent) {
      const std::string& kw = t.text;
      if (kw == "if") return parse_if(j, end, raii);
      if (kw == "while") return parse_while(j, end, raii);
      if (kw == "for") return parse_for(j, end, raii);
      if (kw == "do") return parse_do(j, end, raii);
      if (kw == "switch") return parse_switch(j, end, raii);
      if (kw == "case" || kw == "default") {  // transparent label
        while (*j < end && !is_punct(toks_[*j], ":")) ++*j;
        if (*j < end) ++*j;
        return {};
      }
      if (kw == "else") {  // stray else (should be consumed by parse_if)
        ++*j;
        return parse_stmt(j, end, raii);
      }
    }
    return parse_plain(j, end, raii);
  }

  // Locates the head's balanced parens after a control keyword at `*j`;
  // leaves `*j` one past the ')'.
  bool head_parens(std::size_t* j, std::size_t end, std::size_t* open,
                   std::size_t* close) {
    std::size_t k = *j + 1;
    while (k < end && !is_punct(toks_[k], "(")) {
      if (toks_[k].kind == TokKind::kPunct) return false;
      ++k;  // `if constexpr (...)` and friends
    }
    if (k >= end) return false;
    *open = k;
    int pd = 0;
    for (; k < end; ++k) {
      if (is_punct(toks_[k], "(")) ++pd;
      else if (is_punct(toks_[k], ")") && --pd == 0) {
        *close = k;
        *j = k + 1;
        return true;
      }
    }
    return false;
  }

  Part parse_if(std::size_t* j, std::size_t end,
                std::vector<std::string>* raii) {
    const int line = toks_[*j].line;
    std::size_t open = 0, close = 0;
    if (!head_parens(j, end, &open, &close)) {
      ++*j;
      return {};
    }
    FlowStmt head;
    head.line = line;
    head.kind = FlowStmt::Kind::kBranch;
    scan_exprs(open + 1, close, &head);
    const int h = add_stmt(std::move(head));
    Part then_p = parse_stmt(j, end, raii);
    if (h < 0) return then_p;
    link({h}, then_p.entry);
    Part out;
    out.entry = h;
    out.exits = then_p.entry < 0 ? std::vector<int>{h} : then_p.exits;
    if (*j < end && toks_[*j].kind == TokKind::kIdent &&
        toks_[*j].text == "else") {
      ++*j;
      Part else_p = parse_stmt(j, end, raii);
      link({h}, else_p.entry);
      if (else_p.entry < 0) {
        out.exits.push_back(h);
      } else {
        out.exits.insert(out.exits.end(), else_p.exits.begin(),
                         else_p.exits.end());
      }
    } else if (then_p.entry >= 0) {
      out.exits.push_back(h);  // fall-through when the condition is false
    }
    return out;
  }

  Part parse_loop_head_and_body(FlowStmt head, std::size_t* j, std::size_t end,
                                std::vector<std::string>* raii) {
    const int h = add_stmt(std::move(head));
    Part body = parse_stmt(j, end, raii);
    if (h < 0) return body;
    link({h}, body.entry);
    link(body.exits, h);  // back edge
    Part out;
    out.entry = h;
    out.exits = {h};
    return out;
  }

  Part parse_while(std::size_t* j, std::size_t end,
                   std::vector<std::string>* raii) {
    const int line = toks_[*j].line;
    std::size_t open = 0, close = 0;
    if (!head_parens(j, end, &open, &close)) {
      ++*j;
      return {};
    }
    FlowStmt head;
    head.line = line;
    head.kind = FlowStmt::Kind::kLoop;
    scan_exprs(open + 1, close, &head);
    return parse_loop_head_and_body(std::move(head), j, end, raii);
  }

  Part parse_for(std::size_t* j, std::size_t end,
                 std::vector<std::string>* raii) {
    const int line = toks_[*j].line;
    std::size_t open = 0, close = 0;
    if (!head_parens(j, end, &open, &close)) {
      ++*j;
      return {};
    }
    FlowStmt head;
    head.line = line;
    // Range-for: a ':' at paren depth 1 with no ';' separators. The bound
    // variables are R9 taint targets when the range is nondet-ordered.
    std::size_t colon = kNpos;
    bool classic = false;
    {
      int pd = 1;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (is_punct(toks_[k], "(")) ++pd;
        else if (is_punct(toks_[k], ")")) --pd;
        else if (pd == 1 && is_punct(toks_[k], ";")) {
          classic = true;
          break;
        } else if (pd == 1 && colon == kNpos && is_punct(toks_[k], ":")) {
          colon = k;
        }
      }
    }
    if (!classic && colon != kNpos) {
      head.kind = FlowStmt::Kind::kRangeFor;
      for (std::size_t k = open + 1; k < colon; ++k) {
        if (toks_[k].kind == TokKind::kIdent &&
            !is_local_decl_specifier(toks_[k].text))
          head.defs.push_back(toks_[k].text);
      }
      scan_exprs(colon + 1, close, &head);
    } else {
      head.kind = FlowStmt::Kind::kLoop;
      std::vector<std::string> ignored;
      analyze_range(open + 1, close, &head, &ignored);
    }
    return parse_loop_head_and_body(std::move(head), j, end, raii);
  }

  Part parse_do(std::size_t* j, std::size_t end,
                std::vector<std::string>* raii) {
    ++*j;  // past 'do'
    Part body = parse_stmt(j, end, raii);
    FlowStmt cond;
    cond.kind = FlowStmt::Kind::kLoop;
    cond.line = *j < end ? toks_[*j].line : 0;
    if (*j < end && toks_[*j].kind == TokKind::kIdent &&
        toks_[*j].text == "while") {
      std::size_t open = 0, close = 0;
      if (head_parens(j, end, &open, &close)) scan_exprs(open + 1, close, &cond);
      if (*j < end && is_punct(toks_[*j], ";")) ++*j;
    }
    const int c = add_stmt(std::move(cond));
    if (c < 0) return body;
    link(body.exits, c);
    link({c}, body.entry);  // back edge
    Part out;
    out.entry = body.entry >= 0 ? body.entry : c;
    out.exits = {c};
    return out;
  }

  Part parse_switch(std::size_t* j, std::size_t end,
                    std::vector<std::string>* raii) {
    const int line = toks_[*j].line;
    std::size_t open = 0, close = 0;
    if (!head_parens(j, end, &open, &close)) {
      ++*j;
      return {};
    }
    FlowStmt head;
    head.line = line;
    head.kind = FlowStmt::Kind::kBranch;
    scan_exprs(open + 1, close, &head);
    const int h = add_stmt(std::move(head));
    Part body = parse_stmt(j, end, raii);
    if (h < 0) return body;
    link({h}, body.entry);
    Part out;
    out.entry = h;
    out.exits = body.exits;
    out.exits.push_back(h);  // no matching case
    return out;
  }

  Part parse_plain(std::size_t* j, std::size_t end,
                   std::vector<std::string>* raii) {
    const std::size_t lo = *j;
    int pd = 0, bd = 0;
    std::size_t k = lo;
    for (; k < end; ++k) {
      const Token& t = toks_[k];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") ++pd;
      else if (t.text == ")") --pd;
      else if (t.text == "{") ++bd;  // lambda body / brace init
      else if (t.text == "}") {
        if (bd == 0) break;  // end of enclosing block; unterminated statement
        --bd;
      } else if (t.text == ";" && pd <= 0 && bd == 0) {
        break;
      }
    }
    const std::size_t hi = k;  // exclusive of the ';'
    *j = k < end && is_punct(toks_[k], ";") ? k + 1 : k;
    if (hi == lo) return {};
    FlowStmt s;
    s.line = toks_[lo].line;
    const bool terminal =
        toks_[lo].kind == TokKind::kIdent &&
        (toks_[lo].text == "return" || toks_[lo].text == "break" ||
         toks_[lo].text == "continue" || toks_[lo].text == "throw" ||
         toks_[lo].text == "goto");
    analyze_range(lo + (terminal ? 1 : 0), hi, &s, raii);
    const int idx = add_stmt(std::move(s));
    Part p;
    p.entry = idx;
    if (!terminal && idx >= 0) p.exits = {idx};
    return p;
  }

  // Statement-level extraction: declaration handling first (so the declared
  // name is a def and a RAII guard registers its mutexes), then a generic
  // expression scan over the rest.
  void analyze_range(std::size_t lo, std::size_t hi, FlowStmt* s,
                     std::vector<std::string>* raii) {
    std::string declared;
    std::size_t init_from = kNpos;
    detect_decl(lo, hi, s, &declared, &init_from);
    if (!declared.empty()) {
      s->defs.push_back(declared);
      bool raii_lock = false;
      {
        std::istringstream type(s->decl_type);
        std::string word;
        while (type >> word)
          if (raii_lock_types().count(word) != 0) raii_lock = true;
      }
      if (raii_lock) {
        // `std::lock_guard<std::mutex> g(mu_);` — acquire now, release when
        // the enclosing block closes.
        for (std::size_t k = init_from == kNpos ? hi : init_from; k < hi; ++k) {
          if (toks_[k].kind != TokKind::kIdent) continue;
          std::string base, last;
          k = scan_chain(k, hi, &base, &last) - 1;
          s->locks.push_back(last);
          s->uses.push_back(last);
          raii->push_back(last);
        }
        return;
      }
      if (init_from == kNpos) return;
      lo = init_from;
    }
    scan_exprs(lo, hi, s);
  }

  // Recognizes a local declaration at the start of [lo, hi):
  //   specifier* type-chain template-args? [*&]* name ('=' | '{' | '(' | end)
  // Fills decl_type (space-joined type idents), the declared name, and the
  // first initializer token (kNpos when there is no initializer).
  void detect_decl(std::size_t lo, std::size_t hi, FlowStmt* s,
                   std::string* name, std::size_t* init_from) const {
    std::size_t k = lo;
    std::vector<std::string> type;
    while (k < hi && toks_[k].kind == TokKind::kIdent &&
           is_local_decl_specifier(toks_[k].text)) {
      type.push_back(toks_[k].text);
      ++k;
    }
    while (k < hi && toks_[k].kind == TokKind::kIdent) {
      if (control_keywords().count(toks_[k].text) != 0) return;
      std::vector<std::string> seg = {toks_[k].text};
      std::size_t seg_end = k + 1;
      while (seg_end + 1 < hi && is_punct(toks_[seg_end], "::") &&
             toks_[seg_end + 1].kind == TokKind::kIdent) {
        seg.push_back(toks_[seg_end + 1].text);
        seg_end += 2;
      }
      bool templated = false;
      if (seg_end < hi && is_punct(toks_[seg_end], "<")) {
        const std::size_t after = skip_angles(seg_end, hi, &seg);
        if (after == kNpos) return;  // comparison, not a type
        seg_end = after;
        templated = true;
      }
      // The segment may itself be the declared name (`auto it = ...`,
      // `unsigned x = 0`): a single untemplated ident, with type context
      // already collected, followed by an initializer or the end.
      if (!templated && seg.size() == 1 && !type.empty() &&
          is_init_or_end(seg_end, hi)) {
        *name = seg[0];
        s->decl_type = join_words(type);
        *init_from = seg_end < hi ? seg_end + 1 : kNpos;
        return;
      }
      std::size_t decl_end = seg_end;
      while (decl_end < hi && toks_[decl_end].kind == TokKind::kPunct &&
             (toks_[decl_end].text == "*" || toks_[decl_end].text == "&" ||
              toks_[decl_end].text == "&&"))
        ++decl_end;
      if (decl_end < hi && toks_[decl_end].kind == TokKind::kIdent &&
          control_keywords().count(toks_[decl_end].text) == 0 &&
          is_init_or_end(decl_end + 1, hi)) {
        for (const std::string& t : seg) type.push_back(t);
        *name = toks_[decl_end].text;
        s->decl_type = join_words(type);
        *init_from = decl_end + 1 < hi ? decl_end + 2 : kNpos;
        return;
      }
      // Multi-word builtin types (`unsigned long x`): absorb and continue.
      if (!templated && seg.size() == 1 && seg_end == k + 1 && seg_end < hi &&
          toks_[seg_end].kind == TokKind::kIdent) {
        type.push_back(seg[0]);
        k = seg_end;
        continue;
      }
      return;
    }
  }

  bool is_init_or_end(std::size_t k, std::size_t hi) const {
    if (k >= hi) return true;
    if (toks_[k].kind != TokKind::kPunct) return false;
    const std::string& p = toks_[k].text;
    return p == "=" || p == "{" || p == "(" || p == ";" || p == ",";
  }

  // Balanced template-argument skip bounded to [k, hi); collects the
  // identifier tokens inside into `seg`.
  std::size_t skip_angles(std::size_t k, std::size_t hi,
                          std::vector<std::string>* seg) const {
    int depth = 0;
    std::size_t steps = 0;
    for (; k < hi && steps < 256; ++k, ++steps) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kIdent) {
        if (seg != nullptr && depth > 0) seg->push_back(t.text);
        continue;
      }
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "<") {
        ++depth;
      } else if (t.text == ">") {
        if (--depth == 0) return k + 1;
      } else if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) return k + 1;
      } else if (t.text == ";" || t.text == "{" || t.text == "}" ||
                 t.text == "&&" || t.text == "||") {
        return kNpos;
      }
    }
    return kNpos;
  }

  // Access-chain scan: at an identifier, consume `a.b->c::d` and report the
  // base and last identifiers; returns one past the chain.
  std::size_t scan_chain(std::size_t k, std::size_t hi, std::string* base,
                         std::string* last) const {
    *base = *last = toks_[k].text;
    ++k;
    while (k + 1 < hi && toks_[k].kind == TokKind::kPunct &&
           (toks_[k].text == "." || toks_[k].text == "->" ||
            toks_[k].text == "::") &&
           toks_[k + 1].kind == TokKind::kIdent) {
      *last = toks_[k + 1].text;
      k += 2;
    }
    return k;
  }

  // Generic expression scan: calls, defs (assignment targets, ++/--,
  // container mutators, std::erase/erase_if first args), lock()/unlock(),
  // and uses for everything else.
  void scan_exprs(std::size_t lo, std::size_t hi, FlowStmt* s) {
    bool pending_incr = false;
    for (std::size_t k = lo; k < hi;) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kPunct && (t.text == "++" || t.text == "--")) {
        pending_incr = true;
        ++k;
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        ++k;
        continue;
      }
      std::string base, last;
      const std::size_t after = scan_chain(k, hi, &base, &last);
      k = after;
      const bool called = after < hi && is_punct(toks_[after], "(");
      bool wrote = false;
      if (called && control_keywords().count(last) == 0) {
        s->calls.push_back(last);
        const bool member_call = base != last;
        if (member_call && last == "lock") {
          s->locks.push_back(base);
        } else if (member_call && last == "unlock") {
          s->unlocks.push_back(base);
        } else if (member_call && mutator_methods().count(last) != 0) {
          s->defs.push_back(base);
          wrote = true;
        } else if ((last == "erase" || last == "erase_if") && !member_call) {
          // unreachable: bare erase is member_call==false only when base==last
          wrote = false;
        }
        if ((last == "erase" || last == "erase_if") && base == "std") {
          // std::erase(_if)(container, ...) mutates its first argument.
          std::size_t a = after + 1;
          while (a < hi && toks_[a].kind != TokKind::kIdent &&
                 !is_punct(toks_[a], ")"))
            ++a;
          if (a < hi && toks_[a].kind == TokKind::kIdent)
            s->defs.push_back(toks_[a].text);
        }
      }
      const bool assigned = after < hi &&
                            toks_[after].kind == TokKind::kPunct &&
                            assign_op_set().count(toks_[after].text) != 0;
      const bool post_incr = after < hi &&
                             toks_[after].kind == TokKind::kPunct &&
                             (toks_[after].text == "++" ||
                              toks_[after].text == "--");
      if (!wrote) {
        if (assigned || post_incr || pending_incr) {
          s->defs.push_back(base);
        } else if (!(called && base == last)) {
          s->uses.push_back(base);
        }
      }
      pending_incr = false;
    }
  }

  static std::string join_words(const std::vector<std::string>& v) {
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += " ";
      out += v[i];
    }
    return out;
  }

  const std::vector<Token>& toks_;
  std::vector<FlowStmt> stmts_;
};

}  // namespace

bool qname_matches(const std::string& qname, const std::string& pattern) {
  if (qname == pattern) return true;
  const std::string suffix = "::" + pattern;
  return qname.size() > suffix.size() &&
         qname.compare(qname.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

FileFacts extract_facts(const std::vector<Token>& toks) {
  FileFacts out;
  const std::size_t n = toks.size();

  // Skips past a balanced (...) run; `j` must point at the opener.
  auto skip_parens = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    for (; j < n; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")") && --depth == 0) return j + 1;
    }
    return j;
  };
  auto skip_braces = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    for (; j < n; ++j) {
      if (is_punct(toks[j], "{")) ++depth;
      else if (is_punct(toks[j], "}") && --depth == 0) return j + 1;
    }
    return j;
  };

  // `j` points at '<'. Returns the index past the balanced '>', or kNpos
  // when the run is not a plausible template-argument list (a comparison, an
  // unclosed shift, ...). Token budget keeps a stray '<' from scanning the
  // rest of the file.
  auto skip_template_args = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    std::size_t steps = 0;
    for (; j < n && steps < 256; ++j, ++steps) {
      const Token& t = toks[j];
      if (is_punct(t, "<")) {
        ++depth;
      } else if (is_punct(t, ">")) {
        if (--depth == 0) return j + 1;
      } else if (is_punct(t, ">>")) {
        depth -= 2;
        if (depth <= 0) return j + 1;
      } else if (t.kind == TokKind::kPunct &&
                 (t.text == "(" || t.text == ")" || t.text == "{" ||
                  t.text == "}" || t.text == ";" || t.text == "&&" ||
                  t.text == "||")) {
        return kNpos;  // not a template-argument list
      }
    }
    return kNpos;
  };

  // Parses a (possibly ::-qualified, possibly templated) identifier chain
  // starting at `j`, including operator names (`operator()`, `operator==`,
  // `operator bool`). Template arguments are dropped from the recorded name
  // (`Foo<int>::reset` -> "Foo::reset"). Returns one-past-the-chain; fills
  // qname/name/line.
  auto parse_chain = [&](std::size_t j, std::string* qname, std::string* name,
                         int* name_line) -> std::size_t {
    qname->clear();
    while (j < n) {
      if (is_punct(toks[j], "~") && j + 1 < n &&
          toks[j + 1].kind == TokKind::kIdent) {  // destructor
        *qname += "~";
        ++j;
        continue;
      }
      if (toks[j].kind != TokKind::kIdent) break;
      if (toks[j].text == "operator") {
        // Operator name: `operator` + symbol(s), or a conversion type.
        *name_line = toks[j].line;
        std::string op = "operator";
        ++j;
        if (j < n && toks[j].kind == TokKind::kIdent) {
          // operator bool / operator new / conversion operators.
          op += " " + toks[j].text;
          ++j;
          while (j + 1 < n && is_punct(toks[j], "::") &&
                 toks[j + 1].kind == TokKind::kIdent) {
            op += "::" + toks[j + 1].text;
            j += 2;
          }
        } else if (j + 1 < n && is_punct(toks[j], "(") &&
                   is_punct(toks[j + 1], ")")) {
          op += "()";
          j += 2;
        } else if (j + 1 < n && is_punct(toks[j], "[") &&
                   is_punct(toks[j + 1], "]")) {
          op += "[]";
          j += 2;
        } else {
          while (j < n && toks[j].kind == TokKind::kPunct &&
                 !is_punct(toks[j], "("))
            op += toks[j++].text;
        }
        *qname += op;
        *name = op;
        return j;  // an operator name ends the chain
      }
      *qname += toks[j].text;
      *name = toks[j].text;
      *name_line = toks[j].line;
      ++j;
      // Template arguments glued to this segment: `Foo<int>::reset`,
      // `get<int>(x)`. Consumed (and dropped from the name) only when the
      // balanced run is followed by `::` or `(` — a bare `a < b` comparison
      // is left alone.
      if (j < n && is_punct(toks[j], "<")) {
        const std::size_t after_t = skip_template_args(j);
        if (after_t != kNpos && after_t < n &&
            (is_punct(toks[after_t], "::") || is_punct(toks[after_t], "(")))
          j = after_t;
      }
      if (j + 1 < n && is_punct(toks[j], "::") &&
          (toks[j + 1].kind == TokKind::kIdent || is_punct(toks[j + 1], "~"))) {
        *qname += "::";
        ++j;
        continue;
      }
      break;
    }
    return j;
  };

  // Consumes a function body starting at its '{'; records calls.
  auto parse_body = [&](std::size_t j, FunctionInfo* fn) -> std::size_t {
    int depth = 0;
    while (j < n) {
      const Token& t = toks[j];
      if (is_punct(t, "{")) {
        ++depth;
        ++j;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        ++j;
        if (depth == 0) return j;
        continue;
      }
      if (t.kind == TokKind::kIdent || is_punct(t, "~")) {
        std::string qname, name;
        int line = t.line;
        const std::size_t after = parse_chain(j, &qname, &name, &line);
        if (after > j) {
          if (after < n && is_punct(toks[after], "(") &&
              control_keywords().count(name) == 0) {
            CallSite call;
            call.name = name;
            call.line = line;
            if (qname.size() > name.size() + 2)
              call.qualifier =
                  qname.substr(0, qname.size() - name.size() - 2);
            fn->calls.push_back(name);
            fn->call_sites.push_back(std::move(call));
          }
          j = after;
          continue;
        }
      }
      ++j;
    }
    return j;
  };

  // Class-scope tracking: pushed when a class/struct/union *body* opens at
  // the main-loop level, popped at its closing brace. Function bodies are
  // consumed by parse_body, so the main loop only ever walks namespace and
  // class scope (plus brace-initializers, which balance out).
  struct ClassScope {
    std::string name;
    int depth;
  };
  std::vector<ClassScope> classes;
  int depth = 0;

  auto scope_prefix = [&]() -> std::string {
    std::string prefix;
    for (const auto& c : classes)
      if (!c.name.empty()) prefix += c.name + "::";
    return prefix;
  };

  // Class-scope data-member recognizer for R8/R9. `j` points at the first
  // token of a statement (possibly an OVERHAUL_* annotation macro). On
  // success fills `m` (everything but klass) and returns one past the ';';
  // returns kNpos when the statement is not a plain data member.
  auto member_scan = [&](std::size_t j, MemberDecl* m) -> std::size_t {
    if (toks[j].kind != TokKind::kIdent) return kNpos;
    const std::string& first = toks[j].text;
    if (first == "OVERHAUL_SHARD_LOCAL") {
      m->anno = MemberAnno::kShardLocal;
      ++j;
    } else if (first == "OVERHAUL_SHARED" || first == "OVERHAUL_GUARDED_BY") {
      m->anno = first == "OVERHAUL_SHARED" ? MemberAnno::kShared
                                           : MemberAnno::kGuardedBy;
      ++j;
      if (j >= n || !is_punct(toks[j], "(")) return kNpos;
      const std::size_t close = skip_parens(j);
      // '|'-joined accessor list; qualified names keep their "::".
      for (std::size_t k = j + 1; k + 1 < close; ++k) {
        const Token& g = toks[k];
        if (g.kind == TokKind::kIdent) {
          m->guard += g.text;
        } else if (is_punct(g, "::")) {
          m->guard += "::";
        } else if (!m->guard.empty() && m->guard.back() != '|') {
          m->guard += "|";
        }
      }
      if (!m->guard.empty() && m->guard.back() == '|') m->guard.pop_back();
      j = close;
    }
    if (j >= n || toks[j].kind != TokKind::kIdent) return kNpos;
    static const std::set<std::string> kNotMember = {
        "using",    "typedef", "friend",  "operator",      "public",
        "private",  "protected", "template", "static_assert", "class",
        "struct",   "union",   "enum",    "namespace",     "virtual",
        "explicit", "return",  "if",      "for",           "while",
        "switch",   "do",      "case",    "default",       "goto"};
    // Pre-initializer walk: collect declaration tokens up to ';', '=', or a
    // brace initializer, rejecting anything function-shaped along the way.
    bool is_const = false, is_constexpr = false, has_star = false;
    int angle = 0;
    std::size_t k = j;
    std::size_t stmt_end = kNpos;  // one past the ';'
    std::size_t init_at = kNpos;   // position of '=' or the init '{'
    while (k < n) {
      const Token& tk = toks[k];
      if (tk.kind == TokKind::kIdent) {
        if (angle == 0 && kNotMember.count(tk.text) != 0) return kNpos;
        if (angle == 0 && tk.text == "const") is_const = true;
        if (angle == 0 && tk.text == "constexpr") is_constexpr = true;
        ++k;
        continue;
      }
      if (tk.kind != TokKind::kPunct) {  // literal (array dimension, ...)
        ++k;
        continue;
      }
      const std::string& p = tk.text;
      if (p == "<") {
        ++angle;
        ++k;
        continue;
      }
      if (p == ">" || p == ">>") {
        angle = std::max(0, angle - (p == ">" ? 1 : 2));
        ++k;
        continue;
      }
      if (angle > 0) {  // anything goes inside template arguments
        ++k;
        continue;
      }
      if (p == "*") {
        has_star = true;
        ++k;
        continue;
      }
      if (p == "&" || p == "&&" || p == "::" || p == "[" || p == "]") {
        ++k;
        continue;
      }
      if (p == ";") {
        stmt_end = k + 1;
        break;
      }
      if (p == "=" || p == "{") {
        init_at = k;
        break;
      }
      return kNpos;  // '(', ',', ':', '~', ... — function, bitfield, ...
    }
    if (stmt_end == kNpos) {
      if (init_at == kNpos || init_at == j) return kNpos;
      if (is_punct(toks[init_at], "{")) {
        // A brace initializer directly follows a name (`v_{...}`); a '{'
        // after anything else is a function body.
        const Token& prev = toks[init_at - 1];
        if (!(prev.kind == TokKind::kIdent || is_punct(prev, ">") ||
              is_punct(prev, "]")))
          return kNpos;
        const std::size_t after_braces = skip_braces(init_at);
        if (after_braces >= n || !is_punct(toks[after_braces], ";"))
          return kNpos;
        stmt_end = after_braces + 1;
      } else {  // '=': skip the initializer to the ';' at depth 0
        int pd = 0, bd = 0;
        std::size_t e = init_at + 1;
        for (; e < n; ++e) {
          const Token& v = toks[e];
          if (v.kind != TokKind::kPunct) continue;
          if (v.text == "(") ++pd;
          else if (v.text == ")") --pd;
          else if (v.text == "{") ++bd;
          else if (v.text == "}") {
            if (bd == 0) return kNpos;  // ran off the class body
            --bd;
          } else if (v.text == ";" && pd == 0 && bd == 0) {
            break;
          }
        }
        if (e >= n) return kNpos;
        stmt_end = e + 1;
      }
    }
    // The declared name: the identifier directly before the initializer /
    // terminator (or before its '[' array dimensions).
    const std::size_t decl_stop = init_at != kNpos ? init_at : stmt_end - 1;
    std::size_t name_pos = kNpos;
    for (std::size_t q = decl_stop; q > j; --q) {
      if (toks[q - 1].kind != TokKind::kIdent) continue;
      const Token& nx = toks[q];
      if (is_punct(nx, ";") || is_punct(nx, "=") || is_punct(nx, "{") ||
          is_punct(nx, "["))
        name_pos = q - 1;
      break;
    }
    if (name_pos == kNpos || name_pos == j) return kNpos;
    m->name = toks[name_pos].text;
    m->line = toks[name_pos].line;
    for (std::size_t q = j; q < name_pos; ++q) {
      if (toks[q].kind != TokKind::kIdent) continue;
      if (!m->type.empty()) m->type += " ";
      m->type += toks[q].text;
    }
    const bool is_ref = is_punct(toks[name_pos - 1], "&") ||
                        is_punct(toks[name_pos - 1], "&&");
    m->is_mutable = !is_constexpr && !is_ref && !(is_const && !has_star);
    // R7 compatibility: `Type* name` members keep feeding pointer_fields.
    if (name_pos >= j + 2 && is_punct(toks[name_pos - 1], "*") &&
        toks[name_pos - 2].kind == TokKind::kIdent &&
        name_pos + 1 < n &&
        (is_punct(toks[name_pos + 1], ";") ||
         is_punct(toks[name_pos + 1], "=") ||
         is_punct(toks[name_pos + 1], "{"))) {
      out.pointer_fields.push_back({toks[name_pos - 2].text, m->name, m->line});
    }
    return stmt_end;
  };

  // True when `i` sits at the start of a class/namespace-scope statement —
  // the only positions where a member declaration may begin. Keeps the
  // member scanner from re-triggering on identifiers mid-declaration.
  bool stmt_start = true;

  // Lane-context annotation (R13) waiting for the definition it precedes.
  // The macro must be the statement's first token; any ';' or scope brace
  // before a definition header voids it (a declaration-only annotation
  // never leaks onto the next function).
  FnAnno pending_anno = FnAnno::kNone;

  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      ++i;
      stmt_start = true;
      pending_anno = FnAnno::kNone;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!classes.empty() && classes.back().depth == depth) classes.pop_back();
      --depth;
      ++i;
      stmt_start = true;
      pending_anno = FnAnno::kNone;
      continue;
    }
    if (t.kind != TokKind::kIdent && !is_punct(t, "~")) {
      stmt_start = is_punct(t, ";") || is_punct(t, ":");
      if (is_punct(t, ";")) pending_anno = FnAnno::kNone;
      ++i;
      continue;
    }
    if (t.text == "template") {  // skip the parameter list <...>
      ++i;
      if (i < n && is_punct(toks[i], "<")) {
        int tdepth = 0;
        for (; i < n; ++i) {
          if (is_punct(toks[i], "<")) ++tdepth;
          else if (is_punct(toks[i], ">") && --tdepth == 0) {
            ++i;
            break;
          }
        }
      }
      stmt_start = false;
      continue;
    }
    if (t.text == "enum") {
      ++i;
      if (i < n && toks[i].kind == TokKind::kIdent &&
          (toks[i].text == "class" || toks[i].text == "struct"))
        ++i;
      if (i < n && toks[i].kind == TokKind::kIdent) ++i;  // name
      while (i < n && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) ++i;
      if (i < n && is_punct(toks[i], "{")) i = skip_braces(i);
      stmt_start = true;
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union") {
      // Parse the (possibly qualified/templated) class-head name, then scan
      // for the body. A `;` first means forward declaration / friend decl /
      // C-style variable — no scope to push.
      std::string cname, clast;
      int cline = t.line;
      std::size_t j = parse_chain(i + 1, &cname, &clast, &cline);
      std::size_t k = j;
      bool found_body = false;
      while (k < n) {
        if (is_punct(toks[k], "{")) {
          found_body = true;
          break;
        }
        if (is_punct(toks[k], ";") || is_punct(toks[k], "=")) break;
        if (is_punct(toks[k], "(")) {
          k = skip_parens(k);
          continue;
        }
        if (is_punct(toks[k], "<")) {
          const std::size_t a = skip_template_args(k);
          k = a == kNpos ? k + 1 : a;
          continue;
        }
        ++k;
      }
      if (found_body) {
        classes.push_back({clast, depth + 1});
        ++depth;
        i = k + 1;
        stmt_start = true;
      } else {
        i = std::max(k, i + 1);
        stmt_start = false;
      }
      continue;
    }

    // Lane-context function annotation (R13): consumed here, attached to
    // the next definition header this statement produces.
    if (stmt_start && (t.text == "OVERHAUL_COORDINATOR_ONLY" ||
                       t.text == "OVERHAUL_LANE_SAFE")) {
      pending_anno = t.text == "OVERHAUL_COORDINATOR_ONLY"
                         ? FnAnno::kCoordinatorOnly
                         : FnAnno::kLaneSafe;
      ++i;
      continue;  // stmt_start stays true for the header that follows
    }

    // Class-scope data member (R8/R9 raw material). Attempted only at
    // statement starts so mid-declaration identifiers can't re-trigger it;
    // on success the whole statement (through its ';') is consumed.
    if (stmt_start && !classes.empty() && classes.back().depth == depth) {
      MemberDecl m;
      const std::size_t after_m = member_scan(i, &m);
      if (after_m != kNpos) {
        m.klass = scope_prefix();
        if (m.klass.size() >= 2) m.klass.erase(m.klass.size() - 2);  // "::"
        out.members.push_back(std::move(m));
        i = after_m;
        continue;  // stmt_start stays true
      }
    }
    stmt_start = false;

    // Class-scope pointer field: `Type* name;` / `Type* name = ...;` /
    // `Type* name{...};`. Declarations (`Type* f(...)`) are excluded by the
    // '(' check; locals never reach the main loop (bodies are consumed).
    if (!classes.empty() && classes.back().depth == depth && i + 3 < n &&
        toks[i].kind == TokKind::kIdent && is_punct(toks[i + 1], "*") &&
        toks[i + 2].kind == TokKind::kIdent &&
        (is_punct(toks[i + 3], ";") || is_punct(toks[i + 3], "=") ||
         is_punct(toks[i + 3], "{"))) {
      out.pointer_fields.push_back(
          {toks[i].text, toks[i + 2].text, toks[i + 2].line});
      i += 3;
      continue;
    }

    std::string qname, name;
    int name_line = t.line;
    const std::size_t after = parse_chain(i, &qname, &name, &name_line);
    if (after == i || after >= n || !is_punct(toks[after], "(") ||
        control_keywords().count(name) != 0) {
      i = std::max(after, i + 1);
      continue;
    }

    // candidate definition header: NAME ( ... )
    std::size_t j = skip_parens(after);
    bool is_definition = false;
    while (j < n && !is_definition) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kIdent && is_specifier(u.text)) {
        ++j;
      } else if (is_punct(u, "->")) {  // trailing return type
        ++j;
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";"))
          ++j;
      } else if (is_punct(u, ":")) {  // constructor member-init list
        ++j;
        int pd = 0;
        while (j < n) {
          const Token& v = toks[j];
          if (is_punct(v, "(")) ++pd;
          else if (is_punct(v, ")")) --pd;
          else if (is_punct(v, "{")) {
            if (pd > 0) {
              j = skip_braces(j);
              continue;
            }
            // Brace-init of a member (`a_{x}`) directly follows a name;
            // the body brace follows ')' / '}' / the list itself.
            if (j > 0 && (toks[j - 1].kind == TokKind::kIdent ||
                          is_punct(toks[j - 1], ">"))) {
              j = skip_braces(j);
              continue;
            }
            break;  // function body
          } else if (is_punct(v, ";")) {
            break;  // malformed; bail out
          }
          ++j;
        }
      } else if (is_punct(u, "{")) {
        is_definition = true;
      } else {
        break;  // declaration, call expression, `= default`, etc.
      }
    }

    if (!is_definition) {
      i = std::max(j, after + 1);
      continue;
    }

    FunctionInfo fn;
    fn.qualified_name = classes.empty() ? qname : scope_prefix() + qname;
    fn.name = name;
    fn.line = name_line;
    fn.lane_anno = pending_anno;
    pending_anno = FnAnno::kNone;

    // Return type: walk back over '*', '&', and declaration specifiers to
    // the nearest type identifier. Constructors/destructors have none.
    {
      std::size_t b = i;
      while (b > 0) {
        const Token& u = toks[b - 1];
        if (is_punct(u, "*")) {
          fn.ret_is_ptr = true;
          --b;
          continue;
        }
        if (is_punct(u, "&") || is_punct(u, "&&")) {
          --b;
          continue;
        }
        if (u.kind == TokKind::kIdent && is_decl_specifier(u.text)) {
          --b;
          continue;
        }
        if (u.kind == TokKind::kIdent) fn.ret_type = u.text;
        break;
      }
    }

    const std::size_t body_begin = j;
    i = parse_body(j, &fn);
    fn.flow = FlowBuilder(toks).build(body_begin, i);
    out.functions.push_back(std::move(fn));
    stmt_start = true;
  }
  return out;
}

std::vector<FunctionInfo> extract_functions(const std::vector<Token>& toks) {
  return extract_facts(toks).functions;
}

// --- rule configuration ------------------------------------------------------

namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream iss(s);
  std::vector<std::string> out;
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

}  // namespace

bool path_matches(const std::string& raw_path, const std::string& raw_entry) {
  const std::string path = normalize_path(raw_path);
  const std::string entry = normalize_path(raw_entry);
  if (entry.empty()) return false;
  if (entry.back() == '/') {
    // Directory prefix: must appear at the start or after a separator.
    if (path.compare(0, entry.size(), entry) == 0) return true;
    return path.find("/" + entry) != std::string::npos;
  }
  if (path == entry) return true;
  const std::string anchored = "/" + entry;
  return path.size() > anchored.size() &&
         path.compare(path.size() - anchored.size(), anchored.size(),
                      anchored) == 0;
}

namespace {

bool matches_any(const std::string& path,
                 const std::vector<std::string>& entries) {
  return std::any_of(entries.begin(), entries.end(), [&](const auto& e) {
    return path_matches(path, e);
  });
}

}  // namespace

std::optional<RuleConfig> parse_rules(const std::string& text,
                                      std::string* error) {
  RuleConfig cfg;
  std::istringstream iss(text);
  std::string raw;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr)
      *error = "rules:" + std::to_string(lineno) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(iss, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    const auto words = split_ws(raw);
    if (words.empty()) continue;
    const std::string& key = words[0];
    const std::vector<std::string> vals(words.begin() + 1, words.end());
    if (vals.empty()) return fail("key '" + key + "' needs a value");

    auto append = [&](std::vector<std::string>& dst) {
      dst.insert(dst.end(), vals.begin(), vals.end());
    };

    if (key == "r1.file") append(cfg.r1_files);
    else if (key == "r1.send_fn") append(cfg.r1_send_fns);
    else if (key == "r1.recv_fn") append(cfg.r1_recv_fns);
    else if (key == "r1.send_via") append(cfg.r1_send_via);
    else if (key == "r1.recv_via") append(cfg.r1_recv_via);
    else if (key == "r1.allow") append(cfg.r1_allow);
    else if (key == "r2.point") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
            parts[2].empty())
          return fail("r2.point wants file:function:call1|call2, got '" + v +
                      "'");
        MediationPoint p;
        p.file = parts[0];
        p.function = parts[1];
        p.calls = split_on(parts[2], '|');
        cfg.r2_points.push_back(std::move(p));
      }
    } else if (key == "r2.allow") append(cfg.r2_allow);
    else if (key == "r3.field") append(cfg.r3_fields);
    else if (key == "r3.allow") append(cfg.r3_allow);
    else if (key == "r4.banned") append(cfg.r4_banned);
    else if (key == "r4.exempt") append(cfg.r4_exempt);
    else if (key == "r5.seed") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 2 || parts[0].empty() || parts[1].empty())
          return fail("r5.seed wants file:function, got '" + v + "'");
        cfg.r5_seeds.push_back({parts[0], parts[1]});
      }
    } else if (key == "r5.sink") append(cfg.r5_sinks);
    else if (key == "r6.mint") append(cfg.r6_mints);
    else if (key == "r6.source") append(cfg.r6_sources);
    else if (key == "r6.allow") append(cfg.r6_allow);
    else if (key == "r7.type") append(cfg.r7_types);
    else if (key == "r7.allow") append(cfg.r7_allow);
    else if (key == "r8.root") append(cfg.r8_roots);
    else if (key == "r8.allow") append(cfg.r8_allow);
    else if (key == "r9.nondet") append(cfg.r9_nondet);
    else if (key == "r9.source") append(cfg.r9_sources);
    else if (key == "r9.sink") append(cfg.r9_sinks);
    else if (key == "r9.allow") append(cfg.r9_allow);
    else if (key == "r10.order") append(cfg.r10_order);
    else if (key == "r10.holds") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 2 || parts[0].empty() || parts[1].empty())
          return fail("r10.holds wants function:mutex, got '" + v + "'");
        cfg.r10_holds.emplace_back(parts[0], parts[1]);
      }
    } else if (key == "r10.allow") append(cfg.r10_allow);
    else if (key == "r11.local") append(cfg.r11_local);
    else if (key == "r11.fleet") append(cfg.r11_fleet);
    else if (key == "r11.local_var") append(cfg.r11_local_var);
    else if (key == "r11.fleet_var") append(cfg.r11_fleet_var);
    else if (key == "r11.sink_local") append(cfg.r11_sink_local);
    else if (key == "r11.sink_fleet") append(cfg.r11_sink_fleet);
    else if (key == "r11.allow") append(cfg.r11_allow);
    else if (key == "r12.seed") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 2 || parts[0].empty() || parts[1].empty())
          return fail("r12.seed wants file:function, got '" + v + "'");
        cfg.r12_seeds.push_back({parts[0], parts[1]});
      }
    } else if (key == "r12.audit") append(cfg.r12_audit);
    else if (key == "r12.metrics") append(cfg.r12_metrics);
    else if (key == "r13.entry") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 2 || parts[0].empty() || parts[1].empty())
          return fail("r13.entry wants file:function, got '" + v + "'");
        cfg.r13_entries.push_back({parts[0], parts[1]});
      }
    } else if (key == "r13.allow") append(cfg.r13_allow);
    else if (key == "cg.edge") {
      if (vals.size() != 2)
        return fail("cg.edge wants exactly: caller-qname callee-qname");
      cfg.cg_edges.push_back({vals[0], vals[1]});
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  return cfg;
}

std::optional<RuleConfig> load_rules_file(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open rules file: " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_rules(buf.str(), error);
}

// --- per-file analysis -------------------------------------------------------

namespace {

bool calls_one_of(const FunctionInfo& fn,
                  const std::vector<std::string>& wanted) {
  return std::any_of(wanted.begin(), wanted.end(), [&](const auto& w) {
    return std::find(fn.calls.begin(), fn.calls.end(), w) != fn.calls.end();
  });
}

std::string join(const std::vector<std::string>& v, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += sep;
    out += v[i];
  }
  return out;
}

bool in_list(const std::string& s, const std::vector<std::string>& v) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// R2 function match: exact unqualified or qualified-suffix.
bool function_matches(const FunctionInfo& fn, const std::string& want) {
  return fn.name == want || qname_matches(fn.qualified_name, want);
}

}  // namespace

std::vector<Finding> run_file_rules(const FileIR& ir, const RuleConfig& cfg) {
  std::vector<Finding> findings;
  const std::string& path = ir.path;
  const std::vector<FunctionInfo>& fns = ir.functions;

  // R1: IPC interposition completeness.
  if (matches_any(path, cfg.r1_files) && !matches_any(path, cfg.r1_allow)) {
    for (const auto& fn : fns) {
      if (in_list(fn.name, cfg.r1_send_fns) &&
          !calls_one_of(fn, cfg.r1_send_via)) {
        findings.push_back(
            {path, fn.line, "R1",
             "send interposition point '" + fn.qualified_name +
                 "' never calls any of: " + join(cfg.r1_send_via, ", "),
             fn.qualified_name});
      }
      if (in_list(fn.name, cfg.r1_recv_fns) &&
          !calls_one_of(fn, cfg.r1_recv_via)) {
        findings.push_back(
            {path, fn.line, "R1",
             "receive interposition point '" + fn.qualified_name +
                 "' never calls any of: " + join(cfg.r1_recv_via, ", "),
             fn.qualified_name});
      }
    }
  }

  // R2: direct-call anchors must keep their call edge.
  if (!matches_any(path, cfg.r2_allow)) {
    for (const auto& point : cfg.r2_points) {
      if (!path_matches(path, point.file)) continue;
      const auto it =
          std::find_if(fns.begin(), fns.end(), [&](const FunctionInfo& fn) {
            return function_matches(fn, point.function);
          });
      if (it == fns.end()) {
        findings.push_back(
            {path, 1, "R2",
             "mediation point '" + point.function +
                 "' not found (renamed away? update overhaul_lint.rules)",
             point.function});
      } else if (!calls_one_of(*it, point.calls)) {
        findings.push_back(
            {path, it->line, "R2",
             "'" + it->qualified_name +
                 "' serves a mediated resource but never calls any of: " +
                 join(point.calls, ", "),
             it->qualified_name});
      }
    }
  }

  // R3: guarded-field writes outside the approved API files.
  if (!cfg.r3_fields.empty() && !matches_any(path, cfg.r3_allow)) {
    for (const auto& w : ir.guarded_writes) {
      findings.push_back(
          {path, w.line, "R3",
           "raw write to '" + w.text +
               "' — use adopt_interaction()/clear_interaction() or the "
               "fork-copy path",
           w.text});
    }
  }

  // R4: banned raw clock/time primitives.
  if (!cfg.r4_banned.empty() && !matches_any(path, cfg.r4_exempt)) {
    for (const auto& b : ir.banned_idents) {
      findings.push_back(
          {path, b.line, "R4",
           "banned raw time primitive '" + b.text +
               "' — all simulation time flows through sim::Clock",
           b.text});
    }
  }

  // R7: handle discipline — raw guarded-type pointers must not be stored in
  // long-lived members or returned to callers outside the allowed owner
  // (they go stale the moment ProcessTable::reap recycles the slot; holders
  // must carry a generation-checked TaskHandle instead).
  if (!cfg.r7_types.empty() && !matches_any(path, cfg.r7_allow)) {
    for (const auto& field : ir.pointer_fields) {
      if (!in_list(field.type, cfg.r7_types)) continue;
      findings.push_back(
          {path, field.line, "R7",
           "raw " + field.type + "* member '" + field.name +
               "' stored across a reap()-reachable region — hold a "
               "generation-checked TaskHandle instead",
           field.name});
    }
    for (const auto& fn : fns) {
      if (!fn.ret_is_ptr || !in_list(fn.ret_type, cfg.r7_types)) continue;
      findings.push_back(
          {path, fn.line, "R7",
           "'" + fn.qualified_name + "' returns a raw " + fn.ret_type +
               "* — callers may hold it across reap(); return a "
               "generation-checked TaskHandle",
           fn.qualified_name});
    }
  }

  return findings;
}

std::vector<Finding> analyze_file(const std::string& path,
                                  const std::string& source,
                                  const RuleConfig& cfg) {
  const FileIR ir = build_file_ir(path, source, cfg);
  std::vector<Finding> findings = run_file_rules(ir, cfg);
  // Honor the file's inline suppressions (hygiene findings about the
  // suppressions themselves are a tree-level concern).
  std::erase_if(findings, [&](const Finding& f) {
    return std::any_of(ir.suppressions.begin(), ir.suppressions.end(),
                       [&](const Suppression& s) {
                         return s.rule == f.rule && !s.reason.empty() &&
                                (s.line == f.line || s.line + 1 == f.line);
                       });
  });
  return findings;
}

// run_lint lives in rules_flow.cpp (it wraps the whole-tree pipeline).

}  // namespace overhaul::lint
