#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "ir.h"

namespace overhaul::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we must not split: `=` vs `==` decides whether
// an `interaction_ts` token is a write (R3), and `::` glues qualified names.
const char* kPunct3[] = {"<<=", ">>=", "->*", "..."};
const char* kPunct2[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||",
                         "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=",
                         "|=", "^=", "++", "--"};

// Raw-string-literal prefixes, longest first (u8R before uR/UR/LR/R).
const char* kRawPrefixes[] = {"u8R", "uR", "UR", "LR", "R"};

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  // Raw string literal R"delim( ... )delim" (any standard prefix). `plen` is
  // the prefix length including the R. Returns false when the text at `i`
  // is not a well-formed raw-string opener.
  auto try_raw_string = [&](std::size_t plen) -> bool {
    std::size_t j = i + plen + 1;  // past prefix and opening quote
    std::string delim;
    while (j < n && src[j] != '(') {
      const char d = src[j];
      // The delimiter may not contain spaces, parens, backslash, or newline
      // (and is at most 16 chars); anything else is not a raw string.
      if (d == ')' || d == '\\' || d == '"' || std::isspace(
              static_cast<unsigned char>(d)) || delim.size() >= 16)
        return false;
      delim += d;
      ++j;
    }
    if (j >= n) return false;
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src.find(closer, j);
    const std::size_t stop = end == std::string::npos ? n : end + closer.size();
    const int start_line = line;
    for (std::size_t k = i; k < stop; ++k)
      if (src[k] == '\n') ++line;
    out.push_back({TokKind::kString, "<raw-string>", start_line});
    i = stop;
    return true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    // Conditional-compilation tricks are out of scope for the lint.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Raw string literal, with or without an encoding prefix. Checked before
    // plain identifiers so `LR"(...)"` does not tokenize as ident + string.
    if (is_ident_start(c)) {
      bool raw = false;
      for (const char* p : kRawPrefixes) {
        const std::size_t plen = std::char_traits<char>::length(p);
        if (src.compare(i, plen, p) == 0 && i + plen < n &&
            src[i + plen] == '"') {
          // Only a raw string if the prefix is not glued to a longer
          // identifier (`FooR"x"` is ident FooR then a string).
          if (i > 0 && is_ident_char(src[i - 1])) break;
          if (try_raw_string(plen)) {
            raw = true;
            break;
          }
        }
      }
      if (raw) continue;
    }
    // String / char literal: contents are opaque.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        else if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.push_back({TokKind::kString, quote == '"' ? "<string>" : "<char>",
                     start_line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      out.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E'))))
        ++j;
      if (j < n && src[j] == '.') {  // floating point
        ++j;
        while (j < n && is_ident_char(src[j])) ++j;
      }
      out.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: maximal munch over the known multi-char set.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (src.compare(i, 3, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (src.compare(i, 2, p) == 0) {
        out.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// --- function extraction -----------------------------------------------------

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",        "catch",
      "return", "sizeof", "throw",  "static_assert", "alignof",
      "new",    "delete", "do",     "else",          "case",
      "goto",   "decltype"};
  return kw;
}

bool is_specifier(const std::string& t) {
  return t == "const" || t == "noexcept" || t == "override" || t == "final" ||
         t == "mutable" || t == "constexpr";
}

// Leading declaration specifiers skipped when recovering the return type.
bool is_decl_specifier(const std::string& t) {
  return t == "const" || t == "constexpr" || t == "inline" || t == "static" ||
         t == "virtual" || t == "explicit" || t == "friend" || t == "typename";
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

}  // namespace

bool qname_matches(const std::string& qname, const std::string& pattern) {
  if (qname == pattern) return true;
  const std::string suffix = "::" + pattern;
  return qname.size() > suffix.size() &&
         qname.compare(qname.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

FileFacts extract_facts(const std::vector<Token>& toks) {
  FileFacts out;
  const std::size_t n = toks.size();

  // Skips past a balanced (...) run; `j` must point at the opener.
  auto skip_parens = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    for (; j < n; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")") && --depth == 0) return j + 1;
    }
    return j;
  };
  auto skip_braces = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    for (; j < n; ++j) {
      if (is_punct(toks[j], "{")) ++depth;
      else if (is_punct(toks[j], "}") && --depth == 0) return j + 1;
    }
    return j;
  };

  // `j` points at '<'. Returns the index past the balanced '>', or kNpos
  // when the run is not a plausible template-argument list (a comparison, an
  // unclosed shift, ...). Token budget keeps a stray '<' from scanning the
  // rest of the file.
  auto skip_template_args = [&](std::size_t j) -> std::size_t {
    int depth = 0;
    std::size_t steps = 0;
    for (; j < n && steps < 256; ++j, ++steps) {
      const Token& t = toks[j];
      if (is_punct(t, "<")) {
        ++depth;
      } else if (is_punct(t, ">")) {
        if (--depth == 0) return j + 1;
      } else if (is_punct(t, ">>")) {
        depth -= 2;
        if (depth <= 0) return j + 1;
      } else if (t.kind == TokKind::kPunct &&
                 (t.text == "(" || t.text == ")" || t.text == "{" ||
                  t.text == "}" || t.text == ";" || t.text == "&&" ||
                  t.text == "||")) {
        return kNpos;  // not a template-argument list
      }
    }
    return kNpos;
  };

  // Parses a (possibly ::-qualified, possibly templated) identifier chain
  // starting at `j`, including operator names (`operator()`, `operator==`,
  // `operator bool`). Template arguments are dropped from the recorded name
  // (`Foo<int>::reset` -> "Foo::reset"). Returns one-past-the-chain; fills
  // qname/name/line.
  auto parse_chain = [&](std::size_t j, std::string* qname, std::string* name,
                         int* name_line) -> std::size_t {
    qname->clear();
    while (j < n) {
      if (is_punct(toks[j], "~") && j + 1 < n &&
          toks[j + 1].kind == TokKind::kIdent) {  // destructor
        *qname += "~";
        ++j;
        continue;
      }
      if (toks[j].kind != TokKind::kIdent) break;
      if (toks[j].text == "operator") {
        // Operator name: `operator` + symbol(s), or a conversion type.
        *name_line = toks[j].line;
        std::string op = "operator";
        ++j;
        if (j < n && toks[j].kind == TokKind::kIdent) {
          // operator bool / operator new / conversion operators.
          op += " " + toks[j].text;
          ++j;
          while (j + 1 < n && is_punct(toks[j], "::") &&
                 toks[j + 1].kind == TokKind::kIdent) {
            op += "::" + toks[j + 1].text;
            j += 2;
          }
        } else if (j + 1 < n && is_punct(toks[j], "(") &&
                   is_punct(toks[j + 1], ")")) {
          op += "()";
          j += 2;
        } else if (j + 1 < n && is_punct(toks[j], "[") &&
                   is_punct(toks[j + 1], "]")) {
          op += "[]";
          j += 2;
        } else {
          while (j < n && toks[j].kind == TokKind::kPunct &&
                 !is_punct(toks[j], "("))
            op += toks[j++].text;
        }
        *qname += op;
        *name = op;
        return j;  // an operator name ends the chain
      }
      *qname += toks[j].text;
      *name = toks[j].text;
      *name_line = toks[j].line;
      ++j;
      // Template arguments glued to this segment: `Foo<int>::reset`,
      // `get<int>(x)`. Consumed (and dropped from the name) only when the
      // balanced run is followed by `::` or `(` — a bare `a < b` comparison
      // is left alone.
      if (j < n && is_punct(toks[j], "<")) {
        const std::size_t after_t = skip_template_args(j);
        if (after_t != kNpos && after_t < n &&
            (is_punct(toks[after_t], "::") || is_punct(toks[after_t], "(")))
          j = after_t;
      }
      if (j + 1 < n && is_punct(toks[j], "::") &&
          (toks[j + 1].kind == TokKind::kIdent || is_punct(toks[j + 1], "~"))) {
        *qname += "::";
        ++j;
        continue;
      }
      break;
    }
    return j;
  };

  // Consumes a function body starting at its '{'; records calls.
  auto parse_body = [&](std::size_t j, FunctionInfo* fn) -> std::size_t {
    int depth = 0;
    while (j < n) {
      const Token& t = toks[j];
      if (is_punct(t, "{")) {
        ++depth;
        ++j;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        ++j;
        if (depth == 0) return j;
        continue;
      }
      if (t.kind == TokKind::kIdent || is_punct(t, "~")) {
        std::string qname, name;
        int line = t.line;
        const std::size_t after = parse_chain(j, &qname, &name, &line);
        if (after > j) {
          if (after < n && is_punct(toks[after], "(") &&
              control_keywords().count(name) == 0) {
            CallSite call;
            call.name = name;
            call.line = line;
            if (qname.size() > name.size() + 2)
              call.qualifier =
                  qname.substr(0, qname.size() - name.size() - 2);
            fn->calls.push_back(name);
            fn->call_sites.push_back(std::move(call));
          }
          j = after;
          continue;
        }
      }
      ++j;
    }
    return j;
  };

  // Class-scope tracking: pushed when a class/struct/union *body* opens at
  // the main-loop level, popped at its closing brace. Function bodies are
  // consumed by parse_body, so the main loop only ever walks namespace and
  // class scope (plus brace-initializers, which balance out).
  struct ClassScope {
    std::string name;
    int depth;
  };
  std::vector<ClassScope> classes;
  int depth = 0;

  auto scope_prefix = [&]() -> std::string {
    std::string prefix;
    for (const auto& c : classes)
      if (!c.name.empty()) prefix += c.name + "::";
    return prefix;
  };

  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!classes.empty() && classes.back().depth == depth) classes.pop_back();
      --depth;
      ++i;
      continue;
    }
    if (t.kind != TokKind::kIdent && !is_punct(t, "~")) {
      ++i;
      continue;
    }
    if (t.text == "template") {  // skip the parameter list <...>
      ++i;
      if (i < n && is_punct(toks[i], "<")) {
        int tdepth = 0;
        for (; i < n; ++i) {
          if (is_punct(toks[i], "<")) ++tdepth;
          else if (is_punct(toks[i], ">") && --tdepth == 0) {
            ++i;
            break;
          }
        }
      }
      continue;
    }
    if (t.text == "enum") {
      ++i;
      if (i < n && toks[i].kind == TokKind::kIdent &&
          (toks[i].text == "class" || toks[i].text == "struct"))
        ++i;
      if (i < n && toks[i].kind == TokKind::kIdent) ++i;  // name
      while (i < n && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) ++i;
      if (i < n && is_punct(toks[i], "{")) i = skip_braces(i);
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union") {
      // Parse the (possibly qualified/templated) class-head name, then scan
      // for the body. A `;` first means forward declaration / friend decl /
      // C-style variable — no scope to push.
      std::string cname, clast;
      int cline = t.line;
      std::size_t j = parse_chain(i + 1, &cname, &clast, &cline);
      std::size_t k = j;
      bool found_body = false;
      while (k < n) {
        if (is_punct(toks[k], "{")) {
          found_body = true;
          break;
        }
        if (is_punct(toks[k], ";") || is_punct(toks[k], "=")) break;
        if (is_punct(toks[k], "(")) {
          k = skip_parens(k);
          continue;
        }
        if (is_punct(toks[k], "<")) {
          const std::size_t a = skip_template_args(k);
          k = a == kNpos ? k + 1 : a;
          continue;
        }
        ++k;
      }
      if (found_body) {
        classes.push_back({clast, depth + 1});
        ++depth;
        i = k + 1;
      } else {
        i = std::max(k, i + 1);
      }
      continue;
    }

    // Class-scope pointer field: `Type* name;` / `Type* name = ...;` /
    // `Type* name{...};`. Declarations (`Type* f(...)`) are excluded by the
    // '(' check; locals never reach the main loop (bodies are consumed).
    if (!classes.empty() && classes.back().depth == depth && i + 3 < n &&
        toks[i].kind == TokKind::kIdent && is_punct(toks[i + 1], "*") &&
        toks[i + 2].kind == TokKind::kIdent &&
        (is_punct(toks[i + 3], ";") || is_punct(toks[i + 3], "=") ||
         is_punct(toks[i + 3], "{"))) {
      out.pointer_fields.push_back(
          {toks[i].text, toks[i + 2].text, toks[i + 2].line});
      i += 3;
      continue;
    }

    std::string qname, name;
    int name_line = t.line;
    const std::size_t after = parse_chain(i, &qname, &name, &name_line);
    if (after == i || after >= n || !is_punct(toks[after], "(") ||
        control_keywords().count(name) != 0) {
      i = std::max(after, i + 1);
      continue;
    }

    // candidate definition header: NAME ( ... )
    std::size_t j = skip_parens(after);
    bool is_definition = false;
    while (j < n && !is_definition) {
      const Token& u = toks[j];
      if (u.kind == TokKind::kIdent && is_specifier(u.text)) {
        ++j;
      } else if (is_punct(u, "->")) {  // trailing return type
        ++j;
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";"))
          ++j;
      } else if (is_punct(u, ":")) {  // constructor member-init list
        ++j;
        int pd = 0;
        while (j < n) {
          const Token& v = toks[j];
          if (is_punct(v, "(")) ++pd;
          else if (is_punct(v, ")")) --pd;
          else if (is_punct(v, "{")) {
            if (pd > 0) {
              j = skip_braces(j);
              continue;
            }
            // Brace-init of a member (`a_{x}`) directly follows a name;
            // the body brace follows ')' / '}' / the list itself.
            if (j > 0 && (toks[j - 1].kind == TokKind::kIdent ||
                          is_punct(toks[j - 1], ">"))) {
              j = skip_braces(j);
              continue;
            }
            break;  // function body
          } else if (is_punct(v, ";")) {
            break;  // malformed; bail out
          }
          ++j;
        }
      } else if (is_punct(u, "{")) {
        is_definition = true;
      } else {
        break;  // declaration, call expression, `= default`, etc.
      }
    }

    if (!is_definition) {
      i = std::max(j, after + 1);
      continue;
    }

    FunctionInfo fn;
    fn.qualified_name = classes.empty() ? qname : scope_prefix() + qname;
    fn.name = name;
    fn.line = name_line;

    // Return type: walk back over '*', '&', and declaration specifiers to
    // the nearest type identifier. Constructors/destructors have none.
    {
      std::size_t b = i;
      while (b > 0) {
        const Token& u = toks[b - 1];
        if (is_punct(u, "*")) {
          fn.ret_is_ptr = true;
          --b;
          continue;
        }
        if (is_punct(u, "&") || is_punct(u, "&&")) {
          --b;
          continue;
        }
        if (u.kind == TokKind::kIdent && is_decl_specifier(u.text)) {
          --b;
          continue;
        }
        if (u.kind == TokKind::kIdent) fn.ret_type = u.text;
        break;
      }
    }

    i = parse_body(j, &fn);
    out.functions.push_back(std::move(fn));
  }
  return out;
}

std::vector<FunctionInfo> extract_functions(const std::vector<Token>& toks) {
  return extract_facts(toks).functions;
}

// --- rule configuration ------------------------------------------------------

namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream iss(s);
  std::vector<std::string> out;
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

}  // namespace

bool path_matches(const std::string& raw_path, const std::string& raw_entry) {
  const std::string path = normalize_path(raw_path);
  const std::string entry = normalize_path(raw_entry);
  if (entry.empty()) return false;
  if (entry.back() == '/') {
    // Directory prefix: must appear at the start or after a separator.
    if (path.compare(0, entry.size(), entry) == 0) return true;
    return path.find("/" + entry) != std::string::npos;
  }
  if (path == entry) return true;
  const std::string anchored = "/" + entry;
  return path.size() > anchored.size() &&
         path.compare(path.size() - anchored.size(), anchored.size(),
                      anchored) == 0;
}

namespace {

bool matches_any(const std::string& path,
                 const std::vector<std::string>& entries) {
  return std::any_of(entries.begin(), entries.end(), [&](const auto& e) {
    return path_matches(path, e);
  });
}

}  // namespace

std::optional<RuleConfig> parse_rules(const std::string& text,
                                      std::string* error) {
  RuleConfig cfg;
  std::istringstream iss(text);
  std::string raw;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr)
      *error = "rules:" + std::to_string(lineno) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(iss, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    const auto words = split_ws(raw);
    if (words.empty()) continue;
    const std::string& key = words[0];
    const std::vector<std::string> vals(words.begin() + 1, words.end());
    if (vals.empty()) return fail("key '" + key + "' needs a value");

    auto append = [&](std::vector<std::string>& dst) {
      dst.insert(dst.end(), vals.begin(), vals.end());
    };

    if (key == "r1.file") append(cfg.r1_files);
    else if (key == "r1.send_fn") append(cfg.r1_send_fns);
    else if (key == "r1.recv_fn") append(cfg.r1_recv_fns);
    else if (key == "r1.send_via") append(cfg.r1_send_via);
    else if (key == "r1.recv_via") append(cfg.r1_recv_via);
    else if (key == "r1.allow") append(cfg.r1_allow);
    else if (key == "r2.point") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
            parts[2].empty())
          return fail("r2.point wants file:function:call1|call2, got '" + v +
                      "'");
        MediationPoint p;
        p.file = parts[0];
        p.function = parts[1];
        p.calls = split_on(parts[2], '|');
        cfg.r2_points.push_back(std::move(p));
      }
    } else if (key == "r2.allow") append(cfg.r2_allow);
    else if (key == "r3.field") append(cfg.r3_fields);
    else if (key == "r3.allow") append(cfg.r3_allow);
    else if (key == "r4.banned") append(cfg.r4_banned);
    else if (key == "r4.exempt") append(cfg.r4_exempt);
    else if (key == "r5.seed") {
      for (const auto& v : vals) {
        const auto parts = split_on(v, ':');
        if (parts.size() != 2 || parts[0].empty() || parts[1].empty())
          return fail("r5.seed wants file:function, got '" + v + "'");
        cfg.r5_seeds.push_back({parts[0], parts[1]});
      }
    } else if (key == "r5.sink") append(cfg.r5_sinks);
    else if (key == "r6.mint") append(cfg.r6_mints);
    else if (key == "r6.source") append(cfg.r6_sources);
    else if (key == "r6.allow") append(cfg.r6_allow);
    else if (key == "r7.type") append(cfg.r7_types);
    else if (key == "r7.allow") append(cfg.r7_allow);
    else if (key == "cg.edge") {
      if (vals.size() != 2)
        return fail("cg.edge wants exactly: caller-qname callee-qname");
      cfg.cg_edges.push_back({vals[0], vals[1]});
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  return cfg;
}

std::optional<RuleConfig> load_rules_file(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open rules file: " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_rules(buf.str(), error);
}

// --- per-file analysis -------------------------------------------------------

namespace {

bool calls_one_of(const FunctionInfo& fn,
                  const std::vector<std::string>& wanted) {
  return std::any_of(wanted.begin(), wanted.end(), [&](const auto& w) {
    return std::find(fn.calls.begin(), fn.calls.end(), w) != fn.calls.end();
  });
}

std::string join(const std::vector<std::string>& v, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += sep;
    out += v[i];
  }
  return out;
}

bool in_list(const std::string& s, const std::vector<std::string>& v) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// R2 function match: exact unqualified or qualified-suffix.
bool function_matches(const FunctionInfo& fn, const std::string& want) {
  return fn.name == want || qname_matches(fn.qualified_name, want);
}

}  // namespace

std::vector<Finding> run_file_rules(const FileIR& ir, const RuleConfig& cfg) {
  std::vector<Finding> findings;
  const std::string& path = ir.path;
  const std::vector<FunctionInfo>& fns = ir.functions;

  // R1: IPC interposition completeness.
  if (matches_any(path, cfg.r1_files) && !matches_any(path, cfg.r1_allow)) {
    for (const auto& fn : fns) {
      if (in_list(fn.name, cfg.r1_send_fns) &&
          !calls_one_of(fn, cfg.r1_send_via)) {
        findings.push_back(
            {path, fn.line, "R1",
             "send interposition point '" + fn.qualified_name +
                 "' never calls any of: " + join(cfg.r1_send_via, ", "),
             fn.qualified_name});
      }
      if (in_list(fn.name, cfg.r1_recv_fns) &&
          !calls_one_of(fn, cfg.r1_recv_via)) {
        findings.push_back(
            {path, fn.line, "R1",
             "receive interposition point '" + fn.qualified_name +
                 "' never calls any of: " + join(cfg.r1_recv_via, ", "),
             fn.qualified_name});
      }
    }
  }

  // R2: direct-call anchors must keep their call edge.
  if (!matches_any(path, cfg.r2_allow)) {
    for (const auto& point : cfg.r2_points) {
      if (!path_matches(path, point.file)) continue;
      const auto it =
          std::find_if(fns.begin(), fns.end(), [&](const FunctionInfo& fn) {
            return function_matches(fn, point.function);
          });
      if (it == fns.end()) {
        findings.push_back(
            {path, 1, "R2",
             "mediation point '" + point.function +
                 "' not found (renamed away? update overhaul_lint.rules)",
             point.function});
      } else if (!calls_one_of(*it, point.calls)) {
        findings.push_back(
            {path, it->line, "R2",
             "'" + it->qualified_name +
                 "' serves a mediated resource but never calls any of: " +
                 join(point.calls, ", "),
             it->qualified_name});
      }
    }
  }

  // R3: guarded-field writes outside the approved API files.
  if (!cfg.r3_fields.empty() && !matches_any(path, cfg.r3_allow)) {
    for (const auto& w : ir.guarded_writes) {
      findings.push_back(
          {path, w.line, "R3",
           "raw write to '" + w.text +
               "' — use adopt_interaction()/clear_interaction() or the "
               "fork-copy path",
           w.text});
    }
  }

  // R4: banned raw clock/time primitives.
  if (!cfg.r4_banned.empty() && !matches_any(path, cfg.r4_exempt)) {
    for (const auto& b : ir.banned_idents) {
      findings.push_back(
          {path, b.line, "R4",
           "banned raw time primitive '" + b.text +
               "' — all simulation time flows through sim::Clock",
           b.text});
    }
  }

  // R7: handle discipline — raw guarded-type pointers must not be stored in
  // long-lived members or returned to callers outside the allowed owner
  // (they go stale the moment ProcessTable::reap recycles the slot; holders
  // must carry a generation-checked TaskHandle instead).
  if (!cfg.r7_types.empty() && !matches_any(path, cfg.r7_allow)) {
    for (const auto& field : ir.pointer_fields) {
      if (!in_list(field.type, cfg.r7_types)) continue;
      findings.push_back(
          {path, field.line, "R7",
           "raw " + field.type + "* member '" + field.name +
               "' stored across a reap()-reachable region — hold a "
               "generation-checked TaskHandle instead",
           field.name});
    }
    for (const auto& fn : fns) {
      if (!fn.ret_is_ptr || !in_list(fn.ret_type, cfg.r7_types)) continue;
      findings.push_back(
          {path, fn.line, "R7",
           "'" + fn.qualified_name + "' returns a raw " + fn.ret_type +
               "* — callers may hold it across reap(); return a "
               "generation-checked TaskHandle",
           fn.qualified_name});
    }
  }

  return findings;
}

std::vector<Finding> analyze_file(const std::string& path,
                                  const std::string& source,
                                  const RuleConfig& cfg) {
  const FileIR ir = build_file_ir(path, source, cfg);
  std::vector<Finding> findings = run_file_rules(ir, cfg);
  // Honor the file's inline suppressions (hygiene findings about the
  // suppressions themselves are a tree-level concern).
  std::erase_if(findings, [&](const Finding& f) {
    return std::any_of(ir.suppressions.begin(), ir.suppressions.end(),
                       [&](const Suppression& s) {
                         return s.rule == f.rule && !s.reason.empty() &&
                                (s.line == f.line || s.line + 1 == f.line);
                       });
  });
  return findings;
}

// run_lint lives in rules_flow.cpp (it wraps the whole-tree pipeline).

}  // namespace overhaul::lint
