#include "dataflow.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace overhaul::lint {

namespace {

bool in_list(const std::string& s, const std::vector<std::string>& v) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

std::vector<std::string> split_pipe(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto bar = s.find('|', start);
    if (bar == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (bar > start) out.push_back(s.substr(start, bar - start));
    start = bar + 1;
  }
  return out;
}

// Exempt when the qualified name suffix-matches or the path matches any
// allow entry (same convention as r6.allow).
bool allow_matches(const std::string& qname, const std::string& path,
                   const std::vector<std::string>& allow) {
  for (const auto& a : allow)
    if (qname_matches(qname, a) || path_matches(path, a)) return true;
  return false;
}

// `qname` names a method of `klass` (exact scope or a deeper qualification).
bool method_of(const std::string& qname, const std::string& klass) {
  const std::string pfx = klass + "::";
  if (qname.size() > pfx.size() && qname.compare(0, pfx.size(), pfx) == 0)
    return true;
  return qname.find("::" + pfx) != std::string::npos;
}

std::string class_tail(const std::string& klass) {
  const auto pos = klass.rfind("::");
  return pos == std::string::npos ? klass : klass.substr(pos + 2);
}

// Predecessor lists from the FlowStmt successor lists.
std::vector<std::vector<int>> build_preds(const std::vector<FlowStmt>& flow) {
  std::vector<std::vector<int>> preds(flow.size());
  for (std::size_t i = 0; i < flow.size(); ++i)
    for (const int s : flow[i].succ)
      if (s >= 0 && static_cast<std::size_t>(s) < flow.size())
        preds[s].push_back(static_cast<int>(i));
  return preds;
}

bool type_has_token(const std::string& type,
                    const std::vector<std::string>& tokens) {
  std::istringstream iss(type);
  std::string word;
  while (iss >> word)
    if (in_list(word, tokens)) return true;
  return false;
}

}  // namespace

// --- R8: shared-state discipline ---------------------------------------------

void run_r8(const ProgramIR& program, const CallGraph& graph,
            const RuleConfig& cfg, std::vector<Finding>* findings) {
  if (cfg.r8_roots.empty()) return;
  const auto& nodes = graph.nodes();
  for (const FileIR& file : program.files) {
    for (const MemberDecl& m : file.members) {
      if (!m.is_mutable) continue;
      const bool in_root =
          std::any_of(cfg.r8_roots.begin(), cfg.r8_roots.end(),
                      [&](const std::string& r) {
                        return qname_matches(m.klass, r);
                      });
      if (!in_root) continue;
      const std::string member_q = m.klass + "::" + m.name;
      if (allow_matches(member_q, file.path, cfg.r8_allow)) continue;

      if (m.anno == MemberAnno::kNone) {
        findings->push_back(
            {file.path, m.line, "R8",
             "mutable member '" + member_q + "' of concurrency root '" +
                 m.klass +
                 "' has no ownership annotation (OVERHAUL_SHARD_LOCAL / "
                 "OVERHAUL_SHARED / OVERHAUL_GUARDED_BY)",
             member_q});
        continue;
      }
      if (m.anno != MemberAnno::kShared) continue;

      // Shared member: every write must be in — or call-graph-reachable
      // from — a declared accessor. Constructors/destructors initialize and
      // tear down before/after sharing begins, so they are exempt.
      std::vector<int> legal;
      for (const std::string& acc : split_pipe(m.guard)) {
        const std::string pattern =
            acc.find("::") != std::string::npos ? acc : m.klass + "::" + acc;
        for (const int idx : graph.find_qname(pattern)) legal.push_back(idx);
      }
      const std::vector<char> ok = graph.reachable_from(legal);
      const std::string tail = class_tail(m.klass);
      for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        const CallGraph::Node& node = nodes[ni];
        if (node.fn == nullptr || !method_of(node.qname, m.klass)) continue;
        if (node.name == tail ||
            (!node.name.empty() && node.name[0] == '~'))
          continue;
        if (ni < ok.size() && ok[ni] != 0) continue;
        if (allow_matches(node.qname, node.file, cfg.r8_allow)) continue;
        for (const FlowStmt& st : node.fn->flow) {
          if (!in_list(m.name, st.defs)) continue;
          findings->push_back(
              {node.file, st.line, "R8",
               "write to shared member '" + member_q + "' in '" + node.qname +
                   "', which is not reachable from its declared accessors (" +
                   m.guard + ")",
               node.qname});
          break;  // one finding per (member, function) pair
        }
      }
    }
  }
}

// --- R9: deterministic ordering ----------------------------------------------

namespace {

// Why a name is statically nondet-ordered (member or local of an r9.nondet
// type), keyed by variable name.
using NondetReasons = std::map<std::string, std::string>;

struct TaintProv {
  int line = 0;
  std::string desc;    // human-readable origin of the taint
  std::string parent;  // previous variable in the chain ("" at an origin)
};

struct R9Sink {
  int line = 0;
  std::string call;
  std::string var;  // tainted variable reaching the sink ("" : direct source)
};

struct R9Result {
  std::vector<R9Sink> sinks;
  std::map<std::string, TaintProv> prov;
  NondetReasons nondet;
};

// One function's taint analysis.
R9Result r9_function(const FunctionInfo& fn, const NondetReasons& file_nondet,
                     const RuleConfig& cfg) {
  R9Result res;
  res.nondet = file_nondet;

  // Locals of nondet-ordered type join the static nondet set.
  for (const FlowStmt& s : fn.flow) {
    if (s.decl_type.empty() || !type_has_token(s.decl_type, cfg.r9_nondet))
      continue;
    for (const std::string& d : s.defs)
      res.nondet.emplace(d, "local '" + d + "' declared as '" + s.decl_type +
                                "' (line " + std::to_string(s.line) + ")");
  }

  // Precheck: a sink call and a taint introducer must both be present.
  bool has_sink = false, has_intro = false;
  for (const FlowStmt& s : fn.flow) {
    for (const std::string& c : s.calls) {
      if (in_list(c, cfg.r9_sinks)) has_sink = true;
      if (in_list(c, cfg.r9_sources)) has_intro = true;
    }
    if (s.kind == FlowStmt::Kind::kRangeFor)
      for (const std::string& u : s.uses)
        if (res.nondet.count(u) != 0) has_intro = true;
  }
  if (!has_sink || !has_intro) return res;

  const std::size_t n = fn.flow.size();
  const std::vector<std::vector<int>> preds = build_preds(fn.flow);
  std::vector<std::set<std::string>> out(n);

  auto stmt_in = [&](std::size_t i) {
    std::set<std::string> in;
    for (const int p : preds[i]) in.insert(out[p].begin(), out[p].end());
    return in;
  };

  bool changed = true;
  std::size_t pass = 0;
  while (changed && pass++ <= n + 4) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const FlowStmt& s = fn.flow[i];
      std::set<std::string> in = stmt_in(i);

      std::string range_src;  // nondet/tainted container of a range-for
      if (s.kind == FlowStmt::Kind::kRangeFor) {
        for (const std::string& u : s.uses) {
          if (res.nondet.count(u) != 0 || in.count(u) != 0) {
            range_src = u;
            break;
          }
        }
      }
      std::string source_call;
      for (const std::string& c : s.calls)
        if (in_list(c, cfg.r9_sources)) {
          source_call = c;
          break;
        }
      std::string tainted_use;
      for (const std::string& u : s.uses)
        if (in.count(u) != 0) {
          tainted_use = u;
          break;
        }

      std::set<std::string> o = in;
      if (!range_src.empty() || !source_call.empty() || !tainted_use.empty()) {
        for (const std::string& d : s.defs) {
          o.insert(d);
          if (res.prov.count(d) != 0) continue;
          TaintProv p;
          p.line = s.line;
          if (!range_src.empty()) {
            p.desc = "bound by range-for over nondet-ordered '" + range_src +
                     "'";
            p.parent = res.prov.count(range_src) != 0 ? range_src : "";
            if (p.parent.empty() && res.nondet.count(range_src) != 0)
              p.desc += " [" + res.nondet.at(range_src) + "]";
          } else if (!source_call.empty()) {
            p.desc = "produced by nondet source '" + source_call + "()'";
          } else {
            p.desc = "assigned from tainted '" + tainted_use + "'";
            p.parent = tainted_use;
          }
          res.prov.emplace(d, std::move(p));
        }
      } else {
        for (const std::string& d : s.defs) o.erase(d);
      }
      if (o != out[i]) {
        out[i] = std::move(o);
        changed = true;
      }
    }
  }

  // Sink detection against the converged in-states.
  for (std::size_t i = 0; i < n; ++i) {
    const FlowStmt& s = fn.flow[i];
    std::string sink_call;
    for (const std::string& c : s.calls)
      if (in_list(c, cfg.r9_sinks)) {
        sink_call = c;
        break;
      }
    if (sink_call.empty()) continue;
    const std::set<std::string> in = stmt_in(i);
    std::string var;
    for (const std::string& u : s.uses)
      if (in.count(u) != 0) {
        var = u;
        break;
      }
    if (var.empty()) {
      // `audit.append(rand())`: source and sink in the same statement.
      std::string src;
      for (const std::string& c : s.calls)
        if (in_list(c, cfg.r9_sources)) {
          src = c;
          break;
        }
      if (src.empty()) continue;
      TaintProv p;
      p.line = s.line;
      p.desc = "produced by nondet source '" + src + "()'";
      res.prov.emplace("<" + src + "()>", std::move(p));
      var = "<" + src + "()>";
    }
    res.sinks.push_back({s.line, sink_call, var});
  }
  return res;
}

NondetReasons file_nondet_members(const FileIR& file, const RuleConfig& cfg) {
  NondetReasons out;
  for (const MemberDecl& m : file.members) {
    if (!type_has_token(m.type, cfg.r9_nondet)) continue;
    out.emplace(m.name, "member '" + m.klass + "::" + m.name +
                            "' of nondet-ordered type '" + m.type +
                            "' (line " + std::to_string(m.line) + ")");
  }
  return out;
}

// Formats one origin → sink witness chain.
std::string format_witness(const R9Result& res, const R9Sink& sink,
                           const std::string& file) {
  std::ostringstream out;
  out << "  sink '" << sink.call << "' at " << file << ":" << sink.line
      << " receives tainted '" << sink.var << "'\n";
  std::set<std::string> seen;
  std::string cur = sink.var;
  while (!cur.empty() && seen.insert(cur).second) {
    const auto it = res.prov.find(cur);
    if (it == res.prov.end()) {
      const auto nd = res.nondet.find(cur);
      if (nd != res.nondet.end())
        out << "    '" << cur << "' is " << nd->second << "\n";
      break;
    }
    out << "    '" << cur << "' <- " << it->second.desc << " (line "
        << it->second.line << ")\n";
    cur = it->second.parent;
  }
  return out.str();
}

}  // namespace

void run_r9(const ProgramIR& program, const RuleConfig& cfg,
            std::vector<Finding>* findings) {
  if (cfg.r9_sinks.empty() ||
      (cfg.r9_nondet.empty() && cfg.r9_sources.empty()))
    return;
  for (const FileIR& file : program.files) {
    const NondetReasons members = file_nondet_members(file, cfg);
    for (const FunctionInfo& fn : file.functions) {
      if (allow_matches(fn.qualified_name, file.path, cfg.r9_allow)) continue;
      const R9Result res = r9_function(fn, members, cfg);
      for (const R9Sink& sink : res.sinks) {
        std::string origin;
        const auto it = res.prov.find(sink.var);
        if (it != res.prov.end()) origin = it->second.desc;
        findings->push_back(
            {file.path, sink.line, "R9",
             "nondet-ordered value '" + sink.var + "' reaches sink '" +
                 sink.call + "' in '" + fn.qualified_name +
                 (origin.empty() ? "'" : "' (" + origin + ")") +
                 " — audit/decision streams must be seed-stable; see "
                 "--explain R9:" +
                 fn.name,
             fn.qualified_name});
      }
    }
  }
}

std::string explain_r9(const ProgramIR& program, const RuleConfig& cfg,
                       const std::string& function, int* exit_code) {
  std::ostringstream out;
  bool found = false;
  bool any_flow = false;
  for (const FileIR& file : program.files) {
    const NondetReasons members = file_nondet_members(file, cfg);
    for (const FunctionInfo& fn : file.functions) {
      if (fn.name != function && !qname_matches(fn.qualified_name, function))
        continue;
      found = true;
      const R9Result res = r9_function(fn, members, cfg);
      out << "R9 '" << fn.qualified_name << "' (" << file.path << ":"
          << fn.line << "):\n";
      if (res.sinks.empty()) {
        out << "  no nondet-ordered flow reaches a sink\n";
        continue;
      }
      any_flow = true;
      for (const R9Sink& sink : res.sinks)
        out << format_witness(res, sink, file.path);
    }
  }
  if (!found) {
    *exit_code = 2;
    return "--explain R9: no definition of '" + function + "' found\n";
  }
  (void)any_flow;
  *exit_code = 0;
  return out.str();
}

// --- R10: lock discipline ----------------------------------------------------

namespace {

struct GuardedMember {
  std::string klass;
  std::string mutex;
};

std::size_t rank_of(const std::string& mutex,
                    const std::vector<std::string>& order) {
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] == mutex) return i;
  return static_cast<std::size_t>(-1);
}

}  // namespace

void run_r10(const ProgramIR& program, const RuleConfig& cfg,
             std::vector<Finding>* findings) {
  // Program-wide guarded-member map: members live in headers while the
  // writing methods usually live in the matching .cpp.
  std::map<std::string, std::vector<GuardedMember>> guarded;
  for (const FileIR& file : program.files)
    for (const MemberDecl& m : file.members)
      if (m.anno == MemberAnno::kGuardedBy && !m.guard.empty())
        guarded[m.name].push_back({m.klass, m.guard});

  // Holds contracts keyed by unqualified callee tail.
  std::map<std::string, std::string> holds;
  for (const auto& [fn_pat, mutex] : cfg.r10_holds)
    holds.emplace(class_tail(fn_pat), mutex);

  if (guarded.empty() && holds.empty() && cfg.r10_order.empty()) return;

  for (const FileIR& file : program.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (allow_matches(fn.qualified_name, file.path, cfg.r10_allow)) continue;

      std::set<std::string> entry;
      for (const auto& [fn_pat, mutex] : cfg.r10_holds)
        if (fn.name == fn_pat || qname_matches(fn.qualified_name, fn_pat))
          entry.insert(mutex);

      // Precheck: nothing lock-related happens here — skip the fixed point.
      bool relevant = !entry.empty();
      for (const FlowStmt& s : fn.flow) {
        if (relevant) break;
        if (!s.locks.empty() || !s.unlocks.empty()) relevant = true;
        for (const std::string& d : s.defs)
          if (guarded.count(d) != 0) relevant = true;
        for (const std::string& c : s.calls)
          if (holds.count(c) != 0) relevant = true;
      }
      if (!relevant) continue;

      const std::size_t n = fn.flow.size();
      const std::vector<std::vector<int>> preds = build_preds(fn.flow);

      // Must-hold analysis: intersection at merges, seeded from the entry
      // contract; unvisited nodes start at the universe so back edges don't
      // artificially drain the set.
      std::set<std::string> universe = entry;
      for (const std::string& m : cfg.r10_order) universe.insert(m);
      for (const auto& kv : guarded)
        for (const GuardedMember& g : kv.second) universe.insert(g.mutex);
      for (const FlowStmt& s : fn.flow) {
        universe.insert(s.locks.begin(), s.locks.end());
        universe.insert(s.unlocks.begin(), s.unlocks.end());
      }
      std::vector<std::set<std::string>> out(n, universe);

      auto stmt_in = [&](std::size_t i) {
        if (i == 0) return entry;
        std::set<std::string> in;
        bool first = true;
        for (const int p : preds[i]) {
          if (first) {
            in = out[p];
            first = false;
            continue;
          }
          std::set<std::string> merged;
          std::set_intersection(in.begin(), in.end(), out[p].begin(),
                                out[p].end(),
                                std::inserter(merged, merged.begin()));
          in = std::move(merged);
        }
        if (first) in = entry;  // unreachable from a pred: assume entry state
        return in;
      };

      bool changed = true;
      std::size_t pass = 0;
      while (changed && pass++ <= n + 4) {
        changed = false;
        for (std::size_t i = 0; i < n; ++i) {
          const FlowStmt& s = fn.flow[i];
          std::set<std::string> o = stmt_in(i);
          o.insert(s.locks.begin(), s.locks.end());
          for (const std::string& u : s.unlocks) o.erase(u);
          if (o != out[i]) {
            out[i] = std::move(o);
            changed = true;
          }
        }
      }

      for (std::size_t i = 0; i < n; ++i) {
        const FlowStmt& s = fn.flow[i];
        const std::set<std::string> in = stmt_in(i);

        // 1. Acquisition-order inversions against the declared global order.
        for (const std::string& m : s.locks) {
          const std::size_t rm = rank_of(m, cfg.r10_order);
          if (rm == static_cast<std::size_t>(-1)) continue;
          for (const std::string& h : in) {
            const std::size_t rh = rank_of(h, cfg.r10_order);
            if (rh == static_cast<std::size_t>(-1) || rh <= rm) continue;
            findings->push_back(
                {file.path, s.line, "R10",
                 "lock-order inversion in '" + fn.qualified_name +
                     "': acquiring '" + m + "' while holding '" + h +
                     "' (declared order puts '" + m + "' first)",
                 fn.qualified_name});
          }
        }

        // 2. Guarded-member writes without the guard held.
        for (const std::string& d : s.defs) {
          const auto git = guarded.find(d);
          if (git == guarded.end()) continue;
          for (const GuardedMember& g : git->second) {
            if (!method_of(fn.qualified_name, g.klass)) continue;
            if (in.count(g.mutex) != 0) continue;
            findings->push_back(
                {file.path, s.line, "R10",
                 "write to guarded member '" + g.klass + "::" + d + "' in '" +
                     fn.qualified_name + "' without holding its guard '" +
                     g.mutex + "'",
                 fn.qualified_name});
          }
        }

        // 3. Calls into functions that assert a held mutex (r10.holds).
        for (const std::string& c : s.calls) {
          const auto hit = holds.find(c);
          if (hit == holds.end()) continue;
          if (in.count(hit->second) != 0) continue;
          findings->push_back(
              {file.path, s.line, "R10",
               "call to '" + c + "' in '" + fn.qualified_name +
                   "' without holding '" + hit->second +
                   "' (required by r10.holds)",
               fn.qualified_name});
        }
      }
    }
  }
}

// --- R11: clock-domain soundness ---------------------------------------------

namespace {

// Domain lattice: a value is shard-local, fleet, or (after an unsound merge)
// both. Bitmask so union-at-merge is a plain OR.
constexpr int kDomLocal = 1;
constexpr int kDomFleet = 2;

const char* domain_name(int d) {
  return d == kDomLocal ? "shard-local" : "fleet-domain";
}

// Provenance: how a variable first acquired its domain (mint call or
// assignment chain), for --explain R11 witness chains.
struct DomProv {
  int line = 0;
  int domain = 0;
  std::string desc;
  std::string parent;  // previous variable in the chain ("" at a mint)
};

struct R11Site {
  int line = 0;
  bool is_mix = false;  // false: wrong-domain value at a domain-typed sink
  std::string sink;     // sink call name (sink sites only)
  std::string local_var;
  std::string fleet_var;
};

struct R11Result {
  std::vector<R11Site> sites;
  std::map<std::string, DomProv> prov;
};

// Always-domained identifiers (r11.local_var / r11.fleet_var): their domain
// holds at every use site and cannot be killed by reassignment.
int anno_domain(const std::string& v, const RuleConfig& cfg) {
  int d = 0;
  if (in_list(v, cfg.r11_local_var)) d |= kDomLocal;
  if (in_list(v, cfg.r11_fleet_var)) d |= kDomFleet;
  return d;
}

// One function's domain analysis: forward dataflow mapping var → domain mask,
// union at merges, then mixing/sink detection against the converged states.
R11Result r11_function(const FunctionInfo& fn, const RuleConfig& cfg) {
  R11Result res;

  // Precheck: skip functions with no domain vocabulary at all so a clean
  // warm run stays inside the bench_lint gate.
  bool relevant = false;
  for (const FlowStmt& s : fn.flow) {
    for (const std::string& c : s.calls)
      if (in_list(c, cfg.r11_local) || in_list(c, cfg.r11_fleet) ||
          in_list(c, cfg.r11_sink_local) || in_list(c, cfg.r11_sink_fleet))
        relevant = true;
    for (const std::string& u : s.uses)
      if (anno_domain(u, cfg) != 0) relevant = true;
    if (relevant) break;
  }
  if (!relevant) return res;

  const std::size_t n = fn.flow.size();
  const std::vector<std::vector<int>> preds = build_preds(fn.flow);
  std::vector<std::map<std::string, int>> out(n);

  auto stmt_in = [&](std::size_t i) {
    std::map<std::string, int> in;
    for (const int p : preds[i])
      for (const auto& [v, d] : out[p]) in[v] |= d;
    return in;
  };

  // Per-statement facts, shared by the transfer function and the detector.
  struct StmtFacts {
    std::string local_call, fleet_call;  // first mint/translator call each way
    std::string local_var, fleet_var;    // first used value of each domain
  };
  auto facts_of = [&](const FlowStmt& s, const std::map<std::string, int>& in) {
    StmtFacts f;
    for (const std::string& c : s.calls) {
      if (f.local_call.empty() && in_list(c, cfg.r11_local)) f.local_call = c;
      if (f.fleet_call.empty() && in_list(c, cfg.r11_fleet)) f.fleet_call = c;
    }
    for (const std::string& u : s.uses) {
      int d = anno_domain(u, cfg);
      if (d == 0) {
        const auto it = in.find(u);
        if (it != in.end()) d = it->second;
      }
      if ((d & kDomLocal) != 0 && f.local_var.empty()) f.local_var = u;
      if ((d & kDomFleet) != 0 && f.fleet_var.empty()) f.fleet_var = u;
    }
    return f;
  };

  bool changed = true;
  std::size_t pass = 0;
  while (changed && pass++ <= n + 4) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const FlowStmt& s = fn.flow[i];
      std::map<std::string, int> in = stmt_in(i);
      const StmtFacts f = facts_of(s, in);

      // Defs take the statement's produced domain. A local-mint call wins
      // over a fleet one so `to_local(link.fleet_stamp(), e)` nests right:
      // the outermost translator decides what the statement yields. With no
      // mint, a single-domain use propagates; anything else kills the def.
      int def_domain = 0;
      std::string desc, parent;
      if (!f.local_call.empty()) {
        def_domain = kDomLocal;
        desc = "minted shard-local by '" + f.local_call + "()'";
      } else if (!f.fleet_call.empty()) {
        def_domain = kDomFleet;
        desc = "minted fleet-domain by '" + f.fleet_call + "()'";
      } else if (f.local_var.empty() != f.fleet_var.empty()) {
        def_domain = f.local_var.empty() ? kDomFleet : kDomLocal;
        parent = f.local_var.empty() ? f.fleet_var : f.local_var;
        desc = std::string("assigned from ") + domain_name(def_domain) +
               " '" + parent + "'";
      }

      std::map<std::string, int> o = std::move(in);
      if (def_domain != 0) {
        for (const std::string& d : s.defs) {
          o[d] = def_domain;
          if (res.prov.count(d) == 0)
            res.prov.emplace(d, DomProv{s.line, def_domain, desc, parent});
        }
      } else {
        for (const std::string& d : s.defs)
          if (anno_domain(d, cfg) == 0) o.erase(d);
      }
      if (o != out[i]) {
        out[i] = std::move(o);
        changed = true;
      }
    }
  }

  // Detection against the converged in-states. Any mint/translator call on
  // the statement marks it a sanctioned translation site.
  for (std::size_t i = 0; i < n; ++i) {
    const FlowStmt& s = fn.flow[i];
    const std::map<std::string, int> in = stmt_in(i);
    const StmtFacts f = facts_of(s, in);
    const bool translator = !f.local_call.empty() || !f.fleet_call.empty();

    if (!translator && !f.local_var.empty() && !f.fleet_var.empty()) {
      res.sites.push_back({s.line, true, "", f.local_var, f.fleet_var});
      continue;
    }

    // Domain-typed sinks: a wrong-domain value present with no translation
    // into the sink's domain. Deliberately weak — it fires only when a
    // wrong-domain value is visibly present, never on missing provenance,
    // so untracked values stay silent.
    std::string sink;
    for (const std::string& c : s.calls)
      if (in_list(c, cfg.r11_sink_local)) {
        sink = c;
        break;
      }
    if (!sink.empty() && f.local_call.empty() &&
        (!f.fleet_var.empty() || !f.fleet_call.empty())) {
      const std::string v = !f.fleet_var.empty()
                                ? f.fleet_var
                                : "<" + f.fleet_call + "()>";
      res.sites.push_back({s.line, false, sink, "", v});
      continue;
    }
    sink.clear();
    for (const std::string& c : s.calls)
      if (in_list(c, cfg.r11_sink_fleet)) {
        sink = c;
        break;
      }
    if (!sink.empty() && f.fleet_call.empty() &&
        (!f.local_var.empty() || !f.local_call.empty())) {
      const std::string v = !f.local_var.empty()
                                ? f.local_var
                                : "<" + f.local_call + "()>";
      res.sites.push_back({s.line, false, sink, v, ""});
    }
  }
  return res;
}

// Formats one mint → flow → site witness chain for a domained variable.
void format_domain_chain(std::ostream& out, const R11Result& res,
                         const RuleConfig& cfg, const std::string& var) {
  std::set<std::string> seen;
  std::string cur = var;
  while (!cur.empty() && seen.insert(cur).second) {
    const auto it = res.prov.find(cur);
    if (it == res.prov.end()) {
      const int d = anno_domain(cur, cfg);
      if (d != 0)
        out << "    '" << cur << "' is declared " << domain_name(d)
            << " (r11." << (d == kDomLocal ? "local_var" : "fleet_var")
            << ")\n";
      break;
    }
    out << "    '" << cur << "' <- " << it->second.desc << " (line "
        << it->second.line << ")\n";
    cur = it->second.parent;
  }
}

std::string r11_site_message(const R11Site& site, const std::string& fn_qname,
                             const std::string& fn_name) {
  if (site.is_mix)
    return "clock-domain mix in '" + fn_qname + "': shard-local '" +
           site.local_var + "' and fleet-domain '" + site.fleet_var +
           "' meet with no epoch translation — see --explain R11:" + fn_name;
  const bool wants_local = !site.fleet_var.empty();
  const std::string& v = wants_local ? site.fleet_var : site.local_var;
  return std::string(wants_local ? "fleet-domain '" : "shard-local '") + v +
         "' reaches " + (wants_local ? "shard-local" : "fleet-domain") +
         " sink '" + site.sink + "' in '" + fn_qname +
         "' with no epoch translation — see --explain R11:" + fn_name;
}

}  // namespace

void run_r11(const ProgramIR& program, const RuleConfig& cfg,
             std::vector<Finding>* findings) {
  if (cfg.r11_local.empty() && cfg.r11_fleet.empty() &&
      cfg.r11_local_var.empty() && cfg.r11_fleet_var.empty())
    return;
  for (const FileIR& file : program.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (allow_matches(fn.qualified_name, file.path, cfg.r11_allow)) continue;
      const R11Result res = r11_function(fn, cfg);
      for (const R11Site& site : res.sites)
        findings->push_back(
            {file.path, site.line, "R11",
             r11_site_message(site, fn.qualified_name, fn.name),
             fn.qualified_name});
    }
  }
}

std::string explain_r11(const ProgramIR& program, const RuleConfig& cfg,
                        const std::string& function, int* exit_code) {
  std::ostringstream out;
  bool found = false;
  for (const FileIR& file : program.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (!function.empty() && fn.name != function &&
          !qname_matches(fn.qualified_name, function))
        continue;
      const R11Result res = r11_function(fn, cfg);
      if (function.empty() && res.prov.empty() && res.sites.empty())
        continue;  // bare --explain R11: only domain-relevant functions
      found = true;
      out << "R11 '" << fn.qualified_name << "' (" << file.path << ":"
          << fn.line << "):\n";
      if (res.sites.empty() && res.prov.empty()) {
        out << "  no tracked domain values\n";
        continue;
      }
      for (const auto& [var, prov] : res.prov)
        out << "  " << domain_name(prov.domain) << " '" << var << "' <- "
            << prov.desc << " (line " << prov.line << ")\n";
      for (const R11Site& site : res.sites) {
        if (site.is_mix) {
          out << "  MIX at line " << site.line << ": shard-local '"
              << site.local_var << "' meets fleet-domain '" << site.fleet_var
              << "'\n";
          format_domain_chain(out, res, cfg, site.local_var);
          format_domain_chain(out, res, cfg, site.fleet_var);
        } else {
          const bool wants_local = !site.fleet_var.empty();
          const std::string& v =
              wants_local ? site.fleet_var : site.local_var;
          out << "  SINK at line " << site.line << ": "
              << domain_name(wants_local ? kDomFleet : kDomLocal) << " '" << v
              << "' into " << (wants_local ? "shard-local" : "fleet-domain")
              << " sink '" << site.sink << "'\n";
          format_domain_chain(out, res, cfg, v);
        }
      }
    }
  }
  if (!found && !function.empty()) {
    *exit_code = 2;
    return "--explain R11: no definition of '" + function + "' found\n";
  }
  if (!found) out << "R11: no domain-relevant functions in the tree\n";
  *exit_code = 0;
  return out.str();
}

}  // namespace overhaul::lint
