#include "rules_flow.h"

#include "dataflow.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_map>

namespace overhaul::lint {

namespace fs = std::filesystem;

namespace {

bool has_cpp_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp";
}

std::vector<std::string> discover(const std::vector<std::string>& roots,
                                  std::vector<Finding>* findings) {
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      findings->push_back(
          {root, 0, "io", "root is neither a file nor a directory", root});
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && has_cpp_ext(it->path()))
        paths.push_back(it->path().generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamsize n = in.tellg();
  if (n < 0) return false;
  out->resize(static_cast<std::size_t>(n));
  in.seekg(0);
  return n == 0 || static_cast<bool>(in.read(out->data(), n));
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {"R1", "R2",  "R3",  "R4",  "R5",
                                              "R6", "R7",  "R8",  "R9",  "R10",
                                              "R11", "R12", "R13"};
  return rules;
}

bool in_list(const std::string& s, const std::vector<std::string>& v) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// Whether graph node `v` satisfies one of the R5 sinks: its own definition
// matches, or it calls a sink that has no definition in the scanned tree.
// The per-call-site check rejects on the sink's unqualified tail first so
// the common miss costs one string compare, not a concatenation — this
// runs over every node for every sink list, on every (warm) run.
bool is_sink_node(const CallGraph& g, int v,
                  const std::vector<std::string>& sinks) {
  const CallGraph::Node& node = g.nodes()[v];
  for (const std::string& sink : sinks) {
    if (qname_matches(node.qname, sink)) return true;
    const auto sep = sink.rfind("::");
    const bool bare = sep == std::string::npos;
    const std::string_view tail =
        bare ? std::string_view(sink) : std::string_view(sink).substr(sep + 2);
    for (const CallSite& cs : node.fn->call_sites) {
      if (cs.name != tail) continue;
      if (bare) return true;
      if (!cs.qualifier.empty() &&
          qname_matches(cs.qualifier + "::" + cs.name, sink))
        return true;
    }
  }
  return false;
}

std::string chain_text(const CallGraph& g, const std::vector<int>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += g.nodes()[path[i]].qname;
  }
  return out;
}

std::string join(const std::vector<std::string>& v, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += sep;
    out += v[i];
  }
  return out;
}

// R5 over the whole program. Seeds with a missing file/function are findings
// (a rename must not silently drop a mediation obligation).
void run_r5(const ProgramIR& program, const CallGraph& g,
            const RuleConfig& cfg, std::vector<Finding>* findings) {
  // Sink membership is per-node, not per-seed: memoize it once so each
  // seed's BFS tests a flag instead of rescanning call sites.
  std::vector<char> is_sink(g.nodes().size(), 0);
  for (std::size_t v = 0; v < g.nodes().size(); ++v)
    is_sink[v] = is_sink_node(g, static_cast<int>(v), cfg.r5_sinks) ? 1 : 0;
  for (const SeedPoint& seed : cfg.r5_seeds) {
    const bool file_seen =
        std::any_of(program.files.begin(), program.files.end(),
                    [&](const FileIR& f) {
                      return path_matches(f.path, seed.file);
                    });
    if (!file_seen) {
      findings->push_back({seed.file, 1, "R5",
                           "seed file for '" + seed.function +
                               "' was never scanned (moved? update "
                               "overhaul_lint.rules)",
                           seed.function});
      continue;
    }
    const int start = g.find_in_file(seed.file, seed.function);
    if (start < 0) {
      findings->push_back({seed.file, 1, "R5",
                           "seed function '" + seed.function +
                               "' not found (renamed away? update "
                               "overhaul_lint.rules)",
                           seed.function});
      continue;
    }
    const std::vector<int> path =
        g.shortest_path(start, [&](int v) { return is_sink[v] != 0; });
    if (path.empty()) {
      const CallGraph::Node& node = g.nodes()[start];
      findings->push_back(
          {node.file, node.line, "R5",
           "'" + node.qname +
               "' acquires a mediated resource but no call path reaches a "
               "permission-monitor sink (" +
               join(cfg.r5_sinks, ", ") + ") — run --explain R5:" +
               seed.function + " for the search frontier",
           node.qname});
    }
  }
}

// R6 over the whole program.
void run_r6(const CallGraph& g, const RuleConfig& cfg,
            std::vector<Finding>* findings) {
  if (cfg.r6_mints.empty()) return;
  std::vector<int> sources;
  for (const std::string& s : cfg.r6_sources)
    for (const int v : g.find_qname(s)) sources.push_back(v);
  const std::vector<char> reach = g.reachable_from(sources);

  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    const CallGraph::Node& node = g.nodes()[i];
    for (const CallSite& cs : node.fn->call_sites) {
      if (!in_list(cs.name, cfg.r6_mints)) continue;
      if (reach[i]) continue;
      const bool allowed = std::any_of(
          cfg.r6_allow.begin(), cfg.r6_allow.end(), [&](const std::string& a) {
            return qname_matches(node.qname, a) || path_matches(node.file, a);
          });
      if (allowed) continue;
      findings->push_back(
          {node.file, cs.line, "R6",
           "interaction mint '" + cs.name + "' called from '" + node.qname +
               "', which is not reachable from any sanctioned input source (" +
               join(cfg.r6_sources, ", ") + ")",
           node.qname});
    }
  }
}

// Resolves a seed/entry point to its call-graph node; a vanished file or
// function is itself a finding (a rename must not silently drop an
// obligation). Shared by R12/R13, mirroring run_r5's handling.
int resolve_seed(const ProgramIR& program, const CallGraph& g,
                 const SeedPoint& seed, const char* rule,
                 std::vector<Finding>* findings) {
  const bool file_seen = std::any_of(
      program.files.begin(), program.files.end(),
      [&](const FileIR& f) { return path_matches(f.path, seed.file); });
  if (!file_seen) {
    findings->push_back({seed.file, 1, rule,
                         "seed file for '" + seed.function +
                             "' was never scanned (moved? update "
                             "overhaul_lint.rules)",
                         seed.function});
    return -1;
  }
  const int start = g.find_in_file(seed.file, seed.function);
  if (start < 0) {
    findings->push_back({seed.file, 1, rule,
                         "seed function '" + seed.function +
                             "' not found (renamed away? update "
                             "overhaul_lint.rules)",
                         seed.function});
  }
  return start;
}

// R12: decision/audit completeness — every verdict-producing seed must reach
// both an audit-append sink and a metrics increment. One finding per seed,
// naming the missing trace(s).
void run_r12(const ProgramIR& program, const CallGraph& g,
             const RuleConfig& cfg, std::vector<Finding>* findings) {
  if (cfg.r12_seeds.empty()) return;
  std::vector<char> is_audit(g.nodes().size(), 0);
  std::vector<char> is_metric(g.nodes().size(), 0);
  for (std::size_t v = 0; v < g.nodes().size(); ++v) {
    is_audit[v] = is_sink_node(g, static_cast<int>(v), cfg.r12_audit) ? 1 : 0;
    is_metric[v] =
        is_sink_node(g, static_cast<int>(v), cfg.r12_metrics) ? 1 : 0;
  }
  for (const SeedPoint& seed : cfg.r12_seeds) {
    const int start = resolve_seed(program, g, seed, "R12", findings);
    if (start < 0) continue;
    // One BFS per seed, stopping as soon as both traces are found: the clean
    // (common) case reaches the monitor's append + counter within a few hops,
    // so most seeds never pay for their full reachable closure.
    std::vector<char> seen(g.nodes().size(), 0);
    std::vector<int> queue{start};
    seen[start] = 1;
    bool audit = false, metric = false;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int v = queue[qi];
      if (is_audit[v] != 0) audit = true;
      if (is_metric[v] != 0) metric = true;
      if (audit && metric) break;
      for (const int w : g.out_edges()[v]) {
        if (seen[w] == 0) {
          seen[w] = 1;
          queue.push_back(w);
        }
      }
    }
    if (audit && metric) continue;
    const CallGraph::Node& node = g.nodes()[start];
    std::string missing;
    if (!audit)
      missing = "an audit-append sink (" + join(cfg.r12_audit, ", ") + ")";
    if (!metric) {
      if (!missing.empty()) missing += " or ";
      missing += "a metrics increment (" + join(cfg.r12_metrics, ", ") + ")";
    }
    findings->push_back(
        {node.file, node.line, "R12",
         "'" + node.qname +
             "' produces a mediation verdict but no call path reaches " +
             missing + " — every decision must leave an audit and metrics "
             "trace (silent accountability loss)",
         node.qname});
  }
}

// R13: barrier discipline — worker-lane entry points must not reach
// OVERHAUL_COORDINATOR_ONLY functions; OVERHAUL_LANE_SAFE marks an audited
// boundary (e.g. the deferred outbox) whose callees are not expanded.
void run_r13(const ProgramIR& program, const CallGraph& g,
             const RuleConfig& cfg, std::vector<Finding>* findings) {
  if (cfg.r13_entries.empty()) return;
  const auto allowed = [&](const CallGraph::Node& n) {
    return std::any_of(cfg.r13_allow.begin(), cfg.r13_allow.end(),
                       [&](const std::string& a) {
                         return qname_matches(n.qname, a) ||
                                path_matches(n.file, a);
                       });
  };
  for (const SeedPoint& entry : cfg.r13_entries) {
    const int start = resolve_seed(program, g, entry, "R13", findings);
    if (start < 0) continue;
    const CallGraph::Node& enode = g.nodes()[start];
    if (allowed(enode)) continue;

    // BFS with parent tracking so a finding can name its shortest path.
    std::vector<int> parent(g.nodes().size(), -2);
    std::vector<int> queue{start};
    parent[start] = -1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int v = queue[qi];
      const CallGraph::Node& node = g.nodes()[v];
      if (v != start && node.fn != nullptr) {
        if (node.fn->lane_anno == FnAnno::kCoordinatorOnly) {
          if (!allowed(node)) {
            std::vector<int> path;
            for (int c = v; c != -1; c = parent[c]) path.push_back(c);
            std::reverse(path.begin(), path.end());
            findings->push_back(
                {enode.file, enode.line, "R13",
                 "worker-lane entry '" + enode.qname +
                     "' reaches coordinator-only '" + node.qname +
                     "' outside the barrier: " + chain_text(g, path) +
                     " — route through the deferred outbox or mark the "
                     "audited boundary OVERHAUL_LANE_SAFE",
                 enode.qname});
          }
          continue;  // never expand past a coordinator function
        }
        if (node.fn->lane_anno == FnAnno::kLaneSafe)
          continue;  // audited boundary: lane-safe by contract
      }
      for (const int w : g.out_edges()[v]) {
        if (parent[w] == -2) {
          parent[w] = v;
          queue.push_back(w);
        }
      }
    }
  }
}

// Applies inline suppressions and the baseline; appends hygiene findings
// (rule "sup") for malformed/unused suppressions and stale baseline entries.
void filter_findings(const ProgramIR& program,
                     const std::vector<BaselineEntry>& baseline,
                     std::vector<Finding>* findings, TreeStats* stats) {
  struct SupRef {
    const FileIR* file;
    const Suppression* sup;
    bool used = false;
  };
  std::vector<SupRef> sups;
  for (const FileIR& f : program.files)
    for (const Suppression& s : f.suppressions) sups.push_back({&f, &s});

  std::erase_if(*findings, [&](const Finding& fd) {
    for (SupRef& ref : sups) {
      if (ref.file->path != fd.file) continue;
      const Suppression& s = *ref.sup;
      if (s.rule != fd.rule || s.reason.empty()) continue;
      if (s.line == fd.line || s.line + 1 == fd.line) {
        ref.used = true;
        ++stats->suppressed;
        return true;
      }
    }
    return false;
  });

  std::vector<bool> base_used(baseline.size(), false);
  std::erase_if(*findings, [&](const Finding& fd) {
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const BaselineEntry& e = baseline[i];
      if (e.rule == fd.rule && e.symbol == fd.symbol &&
          path_matches(fd.file, e.file)) {
        base_used[i] = true;
        ++stats->baselined;
        return true;
      }
    }
    return false;
  });

  for (const SupRef& ref : sups) {
    const Suppression& s = *ref.sup;
    if (s.rule.empty() || known_rules().count(s.rule) == 0) {
      findings->push_back({ref.file->path, s.line, "sup",
                           "malformed suppression — want // overhaul-lint: "
                           "allow(R<n>: reason)",
                           s.rule});
    } else if (s.reason.empty()) {
      findings->push_back({ref.file->path, s.line, "sup",
                           "suppression for " + s.rule +
                               " has no reason — reasons are mandatory",
                           s.rule});
    } else if (!ref.used) {
      findings->push_back({ref.file->path, s.line, "sup",
                           "unused suppression for " + s.rule +
                               " — the finding it silenced is gone; delete it",
                           s.rule});
    }
  }
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (base_used[i]) continue;
    const BaselineEntry& e = baseline[i];
    findings->push_back({e.file, 1, "sup",
                         "stale baseline entry [" + e.rule + " " + e.file +
                             " " + e.symbol +
                             "] — the finding is gone; delete the line",
                         e.symbol});
  }
}

TreeResult analyze_program(ProgramIR program, const RuleConfig& cfg,
                           const std::vector<BaselineEntry>& baseline,
                           std::vector<Finding> findings, TreeStats stats) {
  stats.files = program.files.size();
  for (const FileIR& f : program.files) {
    stats.functions += f.functions.size();
    std::vector<Finding> fs = run_file_rules(f, cfg);
    findings.insert(findings.end(), fs.begin(), fs.end());
  }

  // R2 anchors whose file never showed up.
  for (const MediationPoint& point : cfg.r2_points) {
    const bool seen = std::any_of(
        program.files.begin(), program.files.end(),
        [&](const FileIR& f) { return path_matches(f.path, point.file); });
    if (!seen) {
      findings.push_back({point.file, 1, "R2",
                          "mediation point '" + point.function +
                              "' not found: its file was never scanned "
                              "(moved? update overhaul_lint.rules)",
                          point.function});
    }
  }

  const CallGraph graph = CallGraph::build(program, cfg);
  stats.call_edges = graph.edge_count();
  run_r5(program, graph, cfg, &findings);
  run_r6(graph, cfg, &findings);
  run_r8(program, graph, cfg, &findings);
  run_r9(program, cfg, &findings);
  run_r10(program, cfg, &findings);
  run_r11(program, cfg, &findings);
  run_r12(program, graph, cfg, &findings);
  run_r13(program, graph, cfg, &findings);
  filter_findings(program, baseline, &findings, &stats);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  TreeResult res;
  res.findings = std::move(findings);
  res.stats = stats;
  res.program = std::move(program);
  return res;
}

}  // namespace

std::optional<std::vector<BaselineEntry>> parse_baseline(
    const std::string& text, std::string* error) {
  std::vector<BaselineEntry> out;
  std::istringstream iss(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(iss, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    std::istringstream ls(raw);
    BaselineEntry e;
    if (!(ls >> e.rule)) continue;  // blank line
    std::string reason_word;
    if (!(ls >> e.file >> e.symbol >> reason_word)) {
      if (error != nullptr)
        *error = "baseline:" + std::to_string(lineno) +
                 ": want `rule file symbol reason...` (reason is mandatory)";
      return std::nullopt;
    }
    if (known_rules().count(e.rule) == 0) {
      if (error != nullptr)
        *error = "baseline:" + std::to_string(lineno) + ": unknown rule '" +
                 e.rule + "'";
      return std::nullopt;
    }
    e.reason = reason_word;
    std::string rest;
    std::getline(ls, rest);
    e.reason += rest;
    out.push_back(std::move(e));
  }
  return out;
}

std::optional<std::vector<BaselineEntry>> load_baseline_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open baseline file: " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_baseline(buf.str(), error);
}

TreeResult run_tree(const TreeOptions& options) {
  std::vector<Finding> findings;
  TreeStats stats;
  const std::vector<std::string> paths = discover(options.roots, &findings);

  std::vector<FileIR> cached;
  if (!options.cache_path.empty()) {
    std::string blob;
    if (read_file(options.cache_path, &blob))
      parse_cache(blob, options.rules_hash, &cached,
                  &stats.invalidated_by_config);
  }
  std::unordered_map<std::string_view, FileIR*> by_path;
  by_path.reserve(cached.size());
  for (FileIR& f : cached) by_path.emplace(f.path, &f);

  // Cache hygiene: entries for files that vanished from the tree are counted
  // and dropped (the rewrite below serializes only scanned files, so an
  // evicted entry never comes back).
  for (const FileIR& f : cached)
    if (!std::binary_search(paths.begin(), paths.end(), f.path))
      ++stats.evicted;

  ProgramIR program;
  program.files.reserve(paths.size());
  std::size_t hits = 0;
  for (const std::string& path : paths) {
    std::string source;
    if (!read_file(path, &source)) {
      findings.push_back({path, 0, "io", "cannot read file", path});
      continue;
    }
    const std::uint64_t hash = fnv1a64(source);
    const auto it = by_path.find(path);
    if (it != by_path.end() && it->second->source_hash == hash) {
      // Each path appears at most once, so moving out of the cache is safe
      // and spares a deep copy of the whole IR on warm runs.
      program.files.push_back(std::move(*it->second));
      ++hits;
    } else {
      ++stats.reparsed;
      program.files.push_back(build_file_ir(path, source, options.config));
    }
  }

  // Rewrite the cache only when it would change: a fully-warm run where every
  // cached entry was used byte-for-byte skips the serialize + write entirely.
  const bool cache_unchanged = stats.reparsed == 0 && hits == cached.size();
  if (!options.cache_path.empty() && !cache_unchanged) {
    std::ofstream out(options.cache_path, std::ios::binary | std::ios::trunc);
    if (out) out << serialize_cache(program.files, options.rules_hash);
  }

  return analyze_program(std::move(program), options.config, options.baseline,
                         std::move(findings), stats);
}

TreeResult run_tree_mem(
    const std::vector<std::pair<std::string, std::string>>& files,
    const RuleConfig& config, const std::vector<BaselineEntry>& baseline) {
  ProgramIR program;
  TreeStats stats;
  for (const auto& [path, source] : files) {
    ++stats.reparsed;
    program.files.push_back(build_file_ir(path, source, config));
  }
  return analyze_program(std::move(program), config, baseline, {}, stats);
}

ExplainOutcome explain(const ProgramIR& program, const RuleConfig& cfg,
                       const std::string& spec) {
  ExplainOutcome out;
  std::string rule = spec, function;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    rule = spec.substr(0, colon);
    function = spec.substr(colon + 1);
  }
  if (rule != "R5" && rule != "R6" && rule != "R9" && rule != "R11") {
    out.exit_code = 2;
    out.text =
        "--explain understands R5[:<function>], R6:<function>, "
        "R9:<function>, and R11[:<function>]\n";
    return out;
  }
  if (rule == "R9") {
    if (function.empty()) {
      out.exit_code = 2;
      out.text = "--explain R9 wants a function: --explain R9:<function>\n";
      return out;
    }
    out.text = explain_r9(program, cfg, function, &out.exit_code);
    return out;
  }
  if (rule == "R11") {
    out.text = explain_r11(program, cfg, function, &out.exit_code);
    return out;
  }

  const CallGraph g = CallGraph::build(program, cfg);
  std::ostringstream text;

  if (rule == "R5") {
    bool any = false;
    for (const SeedPoint& seed : cfg.r5_seeds) {
      if (!function.empty() && seed.function != function) continue;
      any = true;
      const int start = g.find_in_file(seed.file, seed.function);
      if (start < 0) {
        text << "R5 " << seed.file << ":" << seed.function
             << ": seed not found in the scanned tree\n";
        out.exit_code = 1;
        continue;
      }
      const CallGraph::Node& node = g.nodes()[start];
      const std::vector<int> path = g.shortest_path(
          start, [&](int v) { return is_sink_node(g, v, cfg.r5_sinks); });
      text << "R5 " << node.qname << " (" << node.file << ":" << node.line
           << ")\n";
      if (path.empty()) {
        text << "  NO PATH to any sink: " << join(cfg.r5_sinks, ", ") << "\n";
        text << "  direct callees:";
        for (const int v : g.out_edges()[start])
          text << " " << g.nodes()[v].qname;
        text << "\n";
        out.exit_code = 1;
      } else {
        text << "  " << chain_text(g, path);
        // Name the sink the chain lands on.
        const CallGraph::Node& last = g.nodes()[path.back()];
        for (const std::string& sink : cfg.r5_sinks) {
          if (qname_matches(last.qname, sink)) {
            text << "  [sink]";
            break;
          }
          const bool bare = sink.find("::") == std::string::npos;
          const bool via_call = std::any_of(
              last.fn->call_sites.begin(), last.fn->call_sites.end(),
              [&](const CallSite& cs) {
                return bare ? cs.name == sink
                            : (!cs.qualifier.empty() &&
                               qname_matches(cs.qualifier + "::" + cs.name,
                                             sink));
              });
          if (via_call) {
            text << " -> " << sink << "()  [sink]";
            break;
          }
        }
        text << "\n";
      }
    }
    if (!any) {
      text << "no R5 seed named '" << function << "'\n";
      out.exit_code = 2;
    }
  } else {  // R6
    if (function.empty()) {
      out.exit_code = 2;
      out.text = "--explain R6 wants a function: --explain R6:<function>\n";
      return out;
    }
    std::vector<int> sources;
    for (const std::string& s : cfg.r6_sources)
      for (const int v : g.find_qname(s)) sources.push_back(v);
    const std::vector<int> targets = g.find_qname(function);
    if (targets.empty()) {
      text << "R6: no definition of '" << function << "' in the tree\n";
      out.exit_code = 1;
    }
    for (const int target : targets) {
      const CallGraph::Node& node = g.nodes()[target];
      text << "R6 " << node.qname << " (" << node.file << ":" << node.line
           << ")\n";
      std::vector<int> best;
      for (const int s : sources) {
        const std::vector<int> p =
            g.shortest_path(s, [&](int v) { return v == target; });
        if (!p.empty() && (best.empty() || p.size() < best.size())) best = p;
      }
      if (best.empty()) {
        text << "  NOT reachable from any source: "
             << join(cfg.r6_sources, ", ") << "\n";
        out.exit_code = 1;
      } else {
        text << "  " << chain_text(g, best) << "\n";
      }
    }
  }
  out.text = text.str();
  return out;
}

// Legacy single-call entry point (declared in lint.h): the whole-tree
// pipeline without cache or baseline.
std::vector<Finding> run_lint(const std::vector<std::string>& roots,
                              const RuleConfig& config,
                              std::size_t* files_scanned) {
  TreeOptions opts;
  opts.roots = roots;
  opts.config = config;
  TreeResult res = run_tree(opts);
  if (files_scanned != nullptr) *files_scanned = res.stats.files;
  return std::move(res.findings);
}

}  // namespace overhaul::lint
