#include "sarif.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace overhaul::lint {

namespace {

// Minimal RFC-8259 string escaping: quotes, backslash, and all control
// characters; everything else passes through byte-for-byte.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(const std::string& s) { return "\"" + esc(s) + "\""; }

struct RuleMeta {
  const char* id;
  const char* name;
  const char* description;
};

constexpr RuleMeta kRules[] = {
    {"R1", "ipc-stamp",
     "IPC send/receive interposition points must run the P2 stamp protocol"},
    {"R2", "mediated-access",
     "Direct-call mediation anchors must keep their call edge"},
    {"R3", "ts-write",
     "interaction_ts is written only through the approved APIs"},
    {"R4", "raw-clock",
     "No raw wall-clock primitives outside the virtual-clock module"},
    {"R5", "mediation-reach",
     "Seeded entry points must transitively reach a permission-monitor sink"},
    {"R6", "interaction-taint",
     "Interaction mints flow only from sanctioned hardware-input sources"},
    {"R7", "handle-discipline",
     "No raw TaskStruct* stored or returned outside ProcessTable"},
    {"R8", "shared-state-discipline",
     "Mutable members of concurrency roots carry ownership annotations; "
     "OVERHAUL_SHARED writes stay inside their declared accessors"},
    {"R9", "deterministic-ordering",
     "Unordered-container iteration and entropy sources must not flow into "
     "audit/metrics/decision sinks"},
    {"R10", "lock-discipline",
     "Locks follow the declared acquisition order; OVERHAUL_GUARDED_BY "
     "members are written only with their mutex held"},
    {"R11", "clock-domain-soundness",
     "Shard-local and fleet timestamps never meet or hit a domain-typed "
     "sink without an epoch translation"},
    {"R12", "decision-audit-completeness",
     "Every verdict-producing entry point transitively reaches both an "
     "audit append and a metrics increment"},
    {"R13", "barrier-discipline",
     "Worker-lane entry points never reach OVERHAUL_COORDINATOR_ONLY "
     "functions except through an OVERHAUL_LANE_SAFE boundary"},
    {"io", "io-error", "A configured root or source file could not be read"},
    {"sup", "suppression-hygiene",
     "Malformed/unused suppressions and stale baseline entries"},
};

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& tool_version) {
  std::ostringstream out;
  out << "{";
  out << "\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",";
  out << "\"version\":\"2.1.0\",";
  out << "\"runs\":[{";
  out << "\"tool\":{\"driver\":{";
  out << "\"name\":\"overhaul-lint\",";
  out << "\"version\":" << quoted(tool_version) << ",";
  out << "\"informationUri\":\"https://example.invalid/overhaul\",";
  out << "\"rules\":[";
  for (std::size_t i = 0; i < std::size(kRules); ++i) {
    if (i > 0) out << ",";
    out << "{\"id\":" << quoted(kRules[i].id) << ",\"name\":"
        << quoted(kRules[i].name) << ",\"shortDescription\":{\"text\":"
        << quoted(kRules[i].description) << "}}";
  }
  out << "]}},";
  out << "\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"ruleId\":" << quoted(f.rule) << ",";
    out << "\"level\":\"error\",";
    out << "\"message\":{\"text\":" << quoted(f.message) << "},";
    out << "\"locations\":[{\"physicalLocation\":{";
    out << "\"artifactLocation\":{\"uri\":" << quoted(f.file) << "},";
    // SARIF requires startLine >= 1; tree-level findings carry line 0.
    out << "\"region\":{\"startLine\":" << std::max(1, f.line) << "}}}]";
    if (!f.symbol.empty()) {
      out << ",\"partialFingerprints\":{\"overhaulSymbol/v1\":"
          << quoted(f.rule + ":" + f.symbol) << "}";
    }
    out << "}";
  }
  out << "]}]}";
  return out.str();
}

}  // namespace overhaul::lint
