// Whole-tree analysis pipeline: file discovery, the incremental cache, the
// inter-procedural rules (R5 mediation-reachability, R6 interaction-taint),
// the dataflow rules (R8 shared-state, R9 nondet-order, R10 lock discipline;
// dataflow.h), suppression/baseline filtering, and the --explain witness
// printer.
//
// R5: every seeded resource-acquisition entry point (r5.seed file:function)
// must transitively reach a permission-monitor sink (r5.sink) through the
// call graph. A sink is a definition whose qualified name matches the entry,
// or — for sinks defined outside the scanned tree — any function that calls
// the entry by name. Seeds whose file or function vanished are findings too:
// a renamed entry point must not pass silently.
//
// R6: interaction-state mints (r6.mint, bare callee names) may only be
// invoked from functions reachable from the sanctioned hardware-input
// sources (r6.source, qualified-name suffixes). r6.allow entries (qname
// suffix or path) exempt deliberate non-input callers, e.g. the kernel-side
// handler installer whose lambdas the extractor attributes to it.
//
// R12: decision/audit completeness — the dual of R5. Every seeded
// verdict-producing entry point (r12.seed file:function) must transitively
// reach BOTH an audit-append sink (r12.audit) and a metrics-increment sink
// (r12.metrics): a deny path that short-circuits past the audit append is a
// silent accountability loss. One finding per seed, naming the missing
// trace(s).
//
// R13: barrier discipline. From every worker-lane entry point (r13.entry
// file:function) the call graph must not reach a function annotated
// OVERHAUL_COORDINATOR_ONLY, except through an OVERHAUL_LANE_SAFE boundary
// (the audited deferred-outbox surface), whose callees are not expanded.
// One finding per (entry, coordinator-only function) pair, anchored at the
// entry, naming the offending path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.h"
#include "ir.h"
#include "lint.h"

namespace overhaul::lint {

// One vetted finding: `rule file symbol reason...` (whitespace-separated;
// reason mandatory). Matched by exact rule + path_matches(file) + exact
// symbol, so baselines survive line drift. Unmatched entries are reported as
// stale — a baseline may only shrink by deleting its line.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string symbol;
  std::string reason;
};

std::optional<std::vector<BaselineEntry>> parse_baseline(
    const std::string& text, std::string* error);
std::optional<std::vector<BaselineEntry>> load_baseline_file(
    const std::string& path, std::string* error);

struct TreeOptions {
  std::vector<std::string> roots;
  RuleConfig config;
  // Hash of the rules-file text; part of the cache key so editing the rules
  // invalidates every cached FileIR.
  std::uint64_t rules_hash = 0;
  std::string cache_path;  // empty: no incremental cache
  std::vector<BaselineEntry> baseline;
};

struct TreeStats {
  std::size_t files = 0;
  std::size_t reparsed = 0;  // files not served from the cache
  std::size_t evicted = 0;   // cache entries whose file vanished from disk
  // Cached entries discarded because the config hash (rules/baseline text)
  // changed — distinguishes a config-forced cold pass from source edits.
  std::size_t invalidated_by_config = 0;
  std::size_t functions = 0;
  std::size_t call_edges = 0;
  std::size_t suppressed = 0;  // findings dropped by inline suppressions
  std::size_t baselined = 0;   // findings dropped by the baseline
};

struct TreeResult {
  std::vector<Finding> findings;
  TreeStats stats;
  ProgramIR program;  // kept for --explain and tests
};

// Scans roots, (re)builds the per-file IR through the cache, runs every rule
// family, applies suppressions and the baseline. Findings are sorted by
// (file, line, rule).
TreeResult run_tree(const TreeOptions& options);

// In-memory variant for tests and benches: (path, source) pairs, no I/O.
TreeResult run_tree_mem(
    const std::vector<std::pair<std::string, std::string>>& files,
    const RuleConfig& config,
    const std::vector<BaselineEntry>& baseline = {});

// --explain: prints witness call chains. `spec` is "R5", "R5:<function>",
// "R6:<function>", "R9:<function>" (taint witness: nondet origin -> sink),
// or "R11[:<function>]" (domain witness: mint -> flow -> mixing site).
// exit_code: 0 = every requested witness exists, 1 = at least one chain is
// missing, 2 = bad spec.
struct ExplainOutcome {
  int exit_code = 0;
  std::string text;
};
ExplainOutcome explain(const ProgramIR& program, const RuleConfig& config,
                       const std::string& spec);

}  // namespace overhaul::lint
