// overhaul-lint: mediation-completeness static analyzer.
//
// Overhaul's security argument rests on *complete mediation*: every device
// open, display-resource request, and IPC send/receive must pass through the
// permission monitor or the P1/P2 timestamp-propagation protocol (paper
// §III-B–D, §IV-B). A single missed interposition point silently breaks the
// model, so the build enforces four reference-monitor invariants over the
// repo's own sources:
//
//   R1  ipc-stamp         every send/receive interposition point in the IPC
//                         subsystem calls IpcObject::stamp_on_send /
//                         propagate_on_recv (or an approved equivalent such
//                         as PageFaultEngine::on_access).
//   R2  mediated-access   named resource-acquisition functions (augmented
//                         open(2), clipboard, screen capture) reach
//                         PermissionMonitor::check/check_now before serving.
//   R3  ts-write          TaskStruct::interaction_ts is only written through
//                         the approved APIs (adopt_interaction,
//                         clear_interaction, fork-copy) — never ad hoc.
//   R4  raw-clock         no banned wall-clock/time primitives outside the
//                         virtual-clock module (src/sim/).
//
// The analyzer is deliberately lightweight: a C++ tokenizer, a heuristic
// function extractor (definition name + the set of calls in its body), and a
// rule engine configured by a checked-in allowlist file
// (tools/lint/overhaul_lint.rules). It is not a compiler; it is a tripwire
// tuned to this codebase's idiom, registered as a tier-1 ctest check so a
// refactor cannot drop a mediation call without the build going red.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace overhaul::lint {

// --- tokenizer ---------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

// Comments, preprocessor directives, and literal *contents* never produce
// identifier tokens, so a commented-out mediation call cannot satisfy a rule.
std::vector<Token> tokenize(const std::string& source);

// --- function extraction -----------------------------------------------------

struct FunctionInfo {
  std::string qualified_name;  // e.g. "Pipe::write"
  std::string name;            // unqualified: "write"
  int line = 0;                // line of the definition's name token
  std::vector<std::string> calls;  // unqualified callee names in the body
};

std::vector<FunctionInfo> extract_functions(const std::vector<Token>& tokens);

// --- rule configuration ------------------------------------------------------

// R2 entry: `function` in `file` must call one of `calls`.
struct MediationPoint {
  std::string file;
  std::string function;
  std::vector<std::string> calls;
};

struct RuleConfig {
  // R1
  std::vector<std::string> r1_files;     // path entries (dir/ or file)
  std::vector<std::string> r1_send_fns;  // function names that must stamp
  std::vector<std::string> r1_recv_fns;  // function names that must adopt
  std::vector<std::string> r1_send_via;  // calls accepted as send interposition
  std::vector<std::string> r1_recv_via;  // calls accepted as recv interposition
  std::vector<std::string> r1_allow;     // exempt paths

  // R2
  std::vector<MediationPoint> r2_points;
  std::vector<std::string> r2_allow;

  // R3
  std::vector<std::string> r3_fields;  // guarded field names
  std::vector<std::string> r3_allow;   // paths holding the approved APIs

  // R4
  std::vector<std::string> r4_banned;  // banned identifiers
  std::vector<std::string> r4_exempt;  // paths allowed to use them
};

// Parses the rules file. Returns std::nullopt and sets `error` on malformed
// input (unknown keys are errors so a typo cannot silently disable a rule).
std::optional<RuleConfig> parse_rules(const std::string& text,
                                      std::string* error);
std::optional<RuleConfig> load_rules_file(const std::string& path,
                                          std::string* error);

// --- analysis ----------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // "R1".."R4"
  std::string message;
};

// True when `path` matches a config path entry. Entries ending in '/' are
// directory prefixes; others match the full path or a '/'-anchored suffix, so
// rules written as repo-relative paths work for absolute invocations too.
bool path_matches(const std::string& path, const std::string& entry);

// Runs all rules over one in-memory file.
std::vector<Finding> analyze_file(const std::string& path,
                                  const std::string& source,
                                  const RuleConfig& config);

// Scans `roots` recursively for C++ sources (.cpp/.cc/.h/.hpp), analyzes each,
// and appends an R2 finding for any mediation point whose file was never seen
// (a renamed/deleted anchor must not pass silently). `files_scanned`, when
// non-null, receives the number of files analyzed.
std::vector<Finding> run_lint(const std::vector<std::string>& roots,
                              const RuleConfig& config,
                              std::size_t* files_scanned = nullptr);

}  // namespace overhaul::lint
