// overhaul-lint: mediation-completeness static analyzer.
//
// Overhaul's security argument rests on *complete mediation*: every device
// open, display-resource request, and IPC send/receive must pass through the
// permission monitor or the P1/P2 timestamp-propagation protocol (paper
// §III-B–D, §IV-B). A single missed interposition point silently breaks the
// model, so the build enforces reference-monitor invariants over the repo's
// own sources. Since PR 5 the analyzer is *inter-procedural*: per-file
// parsing (this header: tokenizer + function extractor) feeds a whole-tree
// intermediate representation (ir.h), a cross-file call graph (callgraph.h),
// and flow rules (rules_flow.h) on top of the original per-file rules:
//
//   R1  ipc-stamp         every send/receive interposition point in the IPC
//                         subsystem calls IpcObject::stamp_on_send /
//                         propagate_on_recv (or an approved equivalent such
//                         as PageFaultEngine::on_access).
//   R2  mediated-access   direct-call anchors: the named function must
//                         *directly* call one of the named callees (used for
//                         ordering-sensitive edges — obs hooks, coalescing
//                         flush barriers — where adjacency is the invariant).
//   R3  ts-write          TaskStruct::interaction_ts is only written through
//                         the approved APIs (adopt_interaction,
//                         clear_interaction, fork-copy) — never ad hoc.
//   R4  raw-clock         no banned wall-clock/time primitives outside the
//                         virtual-clock module (src/sim/).
//   R5  mediation-reach   every seeded resource-acquisition entry point must
//                         *transitively* reach a permission-monitor sink
//                         through the call graph (rules_flow.h).
//   R6  interaction-taint interaction-state mints may only be invoked from
//                         functions reachable from the sanctioned hardware-
//                         input sources (rules_flow.h).
//   R7  handle-discipline no raw TaskStruct* stored in a long-lived member
//                         or returned outside ProcessTable — holders must
//                         use generation-checked TaskHandles.
//   R8  shared-state      every mutable member of a declared concurrency
//                         root carries a src/util/annotations.h ownership
//                         annotation, and writes to OVERHAUL_SHARED state
//                         happen only in (or call-graph-reachable from) the
//                         declared accessors (dataflow.h).
//   R9  nondet-order      values produced by iterating unordered containers
//                         (or by rand/time-style sources) must not flow into
//                         audit/metrics/trace/decision sinks — seed-stable
//                         streams are part of the security argument
//                         (dataflow.h; --explain R9:<fn> prints witnesses).
//   R10 lock-discipline   mutex acquisition respects the declared global
//                         order, and OVERHAUL_GUARDED_BY state is written
//                         only with its guard held (dataflow.h).
//   R11 clock-domain      every value minted in a clock domain (shard-local
//                         vs fleet, DESIGN.md §14) stays in that domain:
//                         comparisons, max-merges, and domain-typed sink
//                         calls must not mix domains except through the
//                         declared epoch translators (dataflow.h;
//                         --explain R11[:<fn>] prints the witness chains).
//   R12 decision-audit    the dual of R5: every seeded verdict-producing
//                         function must *transitively* reach both an audit
//                         append and a metrics increment — a deny path that
//                         short-circuits past the audit record is a silent
//                         accountability loss (rules_flow.h).
//   R13 barrier-lanes     worker-lane entry points must not reach an
//                         OVERHAUL_COORDINATOR_ONLY function except through
//                         an OVERHAUL_LANE_SAFE boundary (the deferred-
//                         outbox route) — PR 8's one-barrier-per-quantum
//                         determinism contract (rules_flow.h).
//
// The analyzer is still not a compiler; it is a tripwire tuned to this
// codebase's idiom, registered as a tier-1 ctest check so a refactor cannot
// drop a mediation call without the build going red.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace overhaul::lint {

// --- tokenizer ---------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

// Comments, preprocessor directives, and literal *contents* never produce
// identifier tokens, so a commented-out mediation call cannot satisfy a rule.
// Handles raw string literals (including LR/uR/UR/u8R prefixes) so an
// unbalanced brace or quote inside one cannot desynchronize the extractor.
std::vector<Token> tokenize(const std::string& source);

// --- function extraction -----------------------------------------------------

// One call expression inside a function body. `qualifier` is the explicit
// ::-qualification written at the call site ("IpcObject" for
// IpcObject::stamp_on_send(x)); empty for unqualified/member calls.
struct CallSite {
  std::string name;
  std::string qualifier;
  int line = 0;
};

// One node of a function's flattened intra-procedural control-flow graph
// (the raw material for the R8-R10 dataflow engine, dataflow.h). Compound
// heads (if/for/while/switch) are their own nodes whose successors are the
// branch targets; a RAII lock guard's release becomes a synthetic node at
// the end of its enclosing block.
struct FlowStmt {
  enum class Kind : std::uint8_t {
    kPlain = 0,
    kBranch = 1,    // if / switch head
    kLoop = 2,      // for / while / do-while head
    kRangeFor = 3,  // range-for head: defs = bound vars, uses = range expr
  };
  int line = 0;
  Kind kind = Kind::kPlain;
  std::vector<int> succ;             // indices into the owning flow vector
  std::vector<std::string> defs;     // identifiers written here (assignment,
                                     // ++/--, container mutator calls)
  std::vector<std::string> uses;     // identifiers read here
  std::vector<std::string> calls;    // callee names invoked here
  std::string decl_type;             // space-joined type tokens when this
                                     // statement declares a local ("" else)
  std::vector<std::string> locks;    // mutexes acquired in this statement
  std::vector<std::string> unlocks;  // mutexes released (explicit or RAII)
};

// Lane-context annotation on a function definition (src/util/annotations.h,
// R13). The macro must be the first token of the definition for the
// extractor to see it.
enum class FnAnno : std::uint8_t {
  kNone = 0,
  kCoordinatorOnly = 1,  // OVERHAUL_COORDINATOR_ONLY: barrier/coordinator
                         // context only — never from a worker lane
  kLaneSafe = 2,         // OVERHAUL_LANE_SAFE: audited lane-safe boundary
                         // (defers its coordinator work to the barrier)
};

struct FunctionInfo {
  std::string qualified_name;  // e.g. "Pipe::write"; in-class definitions are
                               // prefixed with the enclosing class scope(s)
  std::string name;            // unqualified: "write", "operator()"
  int line = 0;                // line of the definition's name token
  std::string ret_type;        // last identifier of the return type ("" if
                               // not recoverable: constructors, auto, macros)
  bool ret_is_ptr = false;     // '*' between return type and name
  FnAnno lane_anno = FnAnno::kNone;    // R13 lane-context annotation
  std::vector<std::string> calls;      // unqualified callee names (legacy)
  std::vector<CallSite> call_sites;    // full call-site records
  std::vector<FlowStmt> flow;          // control-flow graph of the body
};

// A pointer-typed data member declared at class scope: `Type* name_;`.
// The raw material for R7 (handle discipline).
struct PointerField {
  std::string type;  // last identifier of the pointee type
  std::string name;
  int line = 0;
};

// src/util/annotations.h vocabulary as the analyzer sees it. The lint does
// not preprocess, so the macros appear as plain identifier tokens preceding
// the member declaration.
enum class MemberAnno : std::uint8_t {
  kNone = 0,
  kShardLocal = 1,  // OVERHAUL_SHARD_LOCAL
  kShared = 2,      // OVERHAUL_SHARED(accessor|accessor...)
  kGuardedBy = 3,   // OVERHAUL_GUARDED_BY(mutex)
};

// A data member declared at class scope, with its ownership annotation.
// The raw material for R8 (shared-state discipline) and R9 (nondet-typed
// member containers).
struct MemberDecl {
  std::string klass;  // enclosing class scope ("NetlinkHub", "Outer::Inner")
  std::string type;   // space-joined type identifier tokens
  std::string name;
  int line = 0;
  MemberAnno anno = MemberAnno::kNone;
  std::string guard;       // kShared: '|'-joined accessors; kGuardedBy: mutex
  bool is_mutable = true;  // false: const/constexpr/reference members
};

struct FileFacts {
  std::vector<FunctionInfo> functions;
  std::vector<PointerField> pointer_fields;
  std::vector<MemberDecl> members;
};

// Heuristic extractor: definition name (class-scope aware), call set, return
// type, and class-scope pointer fields. Hardened for template angle brackets
// in signatures and qualified names, raw string literals, and operator().
FileFacts extract_facts(const std::vector<Token>& tokens);

// Legacy wrapper: functions only.
std::vector<FunctionInfo> extract_functions(const std::vector<Token>& tokens);

// True when `qname` equals `pattern` or ends with "::" + pattern. `pattern`
// itself may be qualified ("PermissionMonitor::check").
bool qname_matches(const std::string& qname, const std::string& pattern);

// --- rule configuration ------------------------------------------------------

// R2 entry: `function` in `file` must directly call one of `calls`.
struct MediationPoint {
  std::string file;
  std::string function;
  std::vector<std::string> calls;
};

// R5 entry: `function` in `file` must transitively reach an r5.sink.
struct SeedPoint {
  std::string file;
  std::string function;
};

// Declared indirect call edge (function-pointer / installed-handler
// indirection the token-level graph cannot see). Both ends are qualified-name
// suffixes; every matching (caller, callee) definition pair gets an edge.
struct ExtraEdge {
  std::string caller;
  std::string callee;
};

struct RuleConfig {
  // R1
  std::vector<std::string> r1_files;     // path entries (dir/ or file)
  std::vector<std::string> r1_send_fns;  // function names that must stamp
  std::vector<std::string> r1_recv_fns;  // function names that must adopt
  std::vector<std::string> r1_send_via;  // calls accepted as send interposition
  std::vector<std::string> r1_recv_via;  // calls accepted as recv interposition
  std::vector<std::string> r1_allow;     // exempt paths

  // R2
  std::vector<MediationPoint> r2_points;
  std::vector<std::string> r2_allow;

  // R3
  std::vector<std::string> r3_fields;  // guarded field names
  std::vector<std::string> r3_allow;   // paths holding the approved APIs

  // R4
  std::vector<std::string> r4_banned;  // banned identifiers
  std::vector<std::string> r4_exempt;  // paths allowed to use them

  // R5 — mediation reachability (inter-procedural).
  std::vector<SeedPoint> r5_seeds;
  std::vector<std::string> r5_sinks;  // qname suffixes or bare callee names

  // R6 — interaction-state taint (inter-procedural).
  std::vector<std::string> r6_mints;    // bare callee names that mint state
  std::vector<std::string> r6_sources;  // qname suffixes of sanctioned roots
  std::vector<std::string> r6_allow;    // qname suffixes or path entries

  // R7 — handle discipline.
  std::vector<std::string> r7_types;  // guarded pointee types ("TaskStruct")
  std::vector<std::string> r7_allow;  // paths allowed to traffic raw pointers

  // R8 — shared-state discipline (annotations + dataflow, dataflow.h).
  std::vector<std::string> r8_roots;  // class names whose mutable members
                                      // must carry an ownership annotation
  std::vector<std::string> r8_allow;  // qname suffixes or paths exempt

  // R9 — deterministic ordering (taint dataflow, dataflow.h).
  std::vector<std::string> r9_nondet;   // type tokens with nondeterministic
                                        // iteration order (unordered_map...)
  std::vector<std::string> r9_sources;  // call names producing nondet values
                                        // (rand, time — generalizes R4)
  std::vector<std::string> r9_sinks;    // call names of audit/metrics/trace/
                                        // decision sinks
  std::vector<std::string> r9_allow;    // qname suffixes or paths exempt

  // R10 — lock discipline (dataflow.h).
  std::vector<std::string> r10_order;  // global acquisition order, outermost
                                       // mutex first
  std::vector<std::pair<std::string, std::string>>
      r10_holds;                       // fn:mutex — fn asserts mutex is held
                                       // on entry (checked at its call sites)
  std::vector<std::string> r10_allow;  // qname suffixes or paths exempt

  // R11 — clock-domain soundness (domain-typed taint, dataflow.h). A value
  // defined by a call in r11.local (r11.fleet) carries the shard-local
  // (fleet) domain; identifiers in r11.local_var / r11.fleet_var carry a
  // domain wherever they appear (the cross-shard stamp cell). A statement
  // that uses both domains, or passes the wrong domain to a declared sink,
  // is a finding unless it also calls a translator — i.e. any function in
  // the target domain's mint list (to_local / to_fleet).
  std::vector<std::string> r11_local;       // calls minting local-domain
  std::vector<std::string> r11_fleet;       // calls minting fleet-domain
  std::vector<std::string> r11_local_var;   // idents that are always local
  std::vector<std::string> r11_fleet_var;   // idents that are always fleet
  std::vector<std::string> r11_sink_local;  // calls consuming local-domain
  std::vector<std::string> r11_sink_fleet;  // calls consuming fleet-domain
  std::vector<std::string> r11_allow;       // qname suffixes or paths exempt

  // R12 — decision/audit completeness (inter-procedural, rules_flow.h).
  // Every seed must transitively reach an r12.audit sink AND an r12.metrics
  // sink through the call graph.
  std::vector<SeedPoint> r12_seeds;
  std::vector<std::string> r12_audit;    // audit-append sink names
  std::vector<std::string> r12_metrics;  // metrics-increment sink names

  // R13 — parallel barrier discipline (inter-procedural, rules_flow.h).
  // From each worker-lane entry point, no OVERHAUL_COORDINATOR_ONLY function
  // may be reachable except through an OVERHAUL_LANE_SAFE boundary (the
  // traversal does not descend past lane-safe functions).
  std::vector<SeedPoint> r13_entries;
  std::vector<std::string> r13_allow;  // qname suffixes or paths exempt

  // Declared call-graph edges for handler/function-pointer indirection.
  std::vector<ExtraEdge> cg_edges;
};

// Parses the rules file. Returns std::nullopt and sets `error` on malformed
// input (unknown keys are errors so a typo cannot silently disable a rule).
std::optional<RuleConfig> parse_rules(const std::string& text,
                                      std::string* error);
std::optional<RuleConfig> load_rules_file(const std::string& path,
                                          std::string* error);

// --- analysis ----------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // "R1".."R13", "io", "sup" (suppression/baseline hygiene)
  std::string message;
  std::string symbol;  // qualified function / field / identifier — the
                       // baseline key, stable across line drift
};

// True when `path` matches a config path entry. Entries ending in '/' are
// directory prefixes; others match the full path or a '/'-anchored suffix, so
// rules written as repo-relative paths work for absolute invocations too.
bool path_matches(const std::string& path, const std::string& entry);

// Runs the per-file rules (R1–R4, R7) over one in-memory file, honoring that
// file's inline suppressions. Inter-procedural rules (R5/R6) need the whole
// tree — see rules_flow.h.
std::vector<Finding> analyze_file(const std::string& path,
                                  const std::string& source,
                                  const RuleConfig& config);

// Scans `roots` recursively for C++ sources (.cpp/.cc/.h/.hpp), analyzes the
// whole tree (per-file and inter-procedural rules), and appends findings for
// any R2/R5 anchor whose file was never seen (a renamed/deleted anchor must
// not pass silently). `files_scanned`, when non-null, receives the number of
// files analyzed. Convenience wrapper over rules_flow.h's run_tree.
std::vector<Finding> run_lint(const std::vector<std::string>& roots,
                              const RuleConfig& config,
                              std::size_t* files_scanned = nullptr);

}  // namespace overhaul::lint
