#include "callgraph.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace overhaul::lint {

CallGraph CallGraph::build(const ProgramIR& program, const RuleConfig& config) {
  CallGraph g;
  for (const FileIR& file : program.files) {
    for (const FunctionInfo& fn : file.functions) {
      g.nodes_.push_back(
          {fn.qualified_name, fn.name, file.path, fn.line, &fn});
    }
  }
  g.edges_.assign(g.nodes_.size(), {});

  // Index definitions by unqualified name (kept for find_in_file).
  std::unordered_map<std::string, std::vector<int>>& by_name = g.by_name_;
  for (std::size_t i = 0; i < g.nodes_.size(); ++i)
    by_name[g.nodes_[i].name].push_back(static_cast<int>(i));

  // Out-degrees are small (a handful of callees per function), so deduping
  // by linear scan of the adjacency list beats a global (from, to) set.
  auto add_edge = [&](int from, int to) {
    if (from == to) return;  // self-loops add nothing to reachability
    std::vector<int>& out = g.edges_[from];
    if (std::find(out.begin(), out.end(), to) != out.end()) return;
    out.push_back(to);
    ++g.edge_count_;
  };

  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    const FunctionInfo& fn = *g.nodes_[i].fn;
    for (const CallSite& call : fn.call_sites) {
      const auto it = by_name.find(call.name);
      if (it == by_name.end()) continue;
      const std::vector<int>& candidates = it->second;
      if (!call.qualifier.empty()) {
        // Qualified call: prefer definitions whose qualified name ends with
        // the written qualification. If none match (the qualifier names a
        // namespace we do not track, say), fall back to all name matches.
        const std::string want = call.qualifier + "::" + call.name;
        std::vector<int> narrowed;
        for (const int c : candidates)
          if (qname_matches(g.nodes_[c].qname, want)) narrowed.push_back(c);
        for (const int c : narrowed.empty() ? candidates : narrowed)
          add_edge(static_cast<int>(i), c);
      } else {
        for (const int c : candidates) add_edge(static_cast<int>(i), c);
      }
    }
  }

  // Declared indirect edges (handler indirection). Collect both endpoint
  // sets in one pass, then splice the cross product — not the naive N^2
  // qname scan per declared edge.
  for (const ExtraEdge& e : config.cg_edges) {
    std::vector<int> callers, callees;
    for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
      if (qname_matches(g.nodes_[i].qname, e.caller))
        callers.push_back(static_cast<int>(i));
      if (qname_matches(g.nodes_[i].qname, e.callee))
        callees.push_back(static_cast<int>(i));
    }
    for (const int from : callers)
      for (const int to : callees) add_edge(from, to);
  }
  return g;
}

std::vector<int> CallGraph::find_qname(const std::string& pattern) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (qname_matches(nodes_[i].qname, pattern))
      out.push_back(static_cast<int>(i));
  return out;
}

int CallGraph::find_in_file(const std::string& file_entry,
                            const std::string& function) const {
  // Any node matching `function` — bare ("step_shard") or qualified-suffix
  // ("Shard::step_to") — necessarily has the pattern's last component as its
  // unqualified name, so the by-name bucket contains every candidate and the
  // path filter runs over a handful of nodes, not the whole graph.
  const auto sep = function.rfind("::");
  const std::string tail =
      sep == std::string::npos ? function : function.substr(sep + 2);
  const auto it = by_name_.find(tail);
  if (it == by_name_.end()) return -1;
  int fallback = -1;
  for (const int i : it->second) {
    if (!path_matches(nodes_[i].file, file_entry)) continue;
    if (nodes_[i].name == function) return i;
    if (fallback < 0 && qname_matches(nodes_[i].qname, function)) fallback = i;
  }
  return fallback;
}

std::vector<char> CallGraph::reachable_from(
    const std::vector<int>& sources) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::deque<int> work;
  for (const int s : sources) {
    if (s >= 0 && s < static_cast<int>(seen.size()) && !seen[s]) {
      seen[s] = 1;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const int u = work.front();
    work.pop_front();
    for (const int v : edges_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        work.push_back(v);
      }
    }
  }
  return seen;
}

std::vector<int> CallGraph::shortest_path(
    int start, const std::function<bool(int)>& accept) const {
  if (start < 0 || start >= static_cast<int>(nodes_.size())) return {};
  std::vector<int> parent(nodes_.size(), -2);
  std::deque<int> work;
  parent[start] = -1;
  work.push_back(start);
  while (!work.empty()) {
    const int u = work.front();
    work.pop_front();
    if (accept(u)) {
      std::vector<int> path;
      for (int v = u; v != -1; v = parent[v]) path.push_back(v);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const int v : edges_[u]) {
      if (parent[v] == -2) {
        parent[v] = u;
        work.push_back(v);
      }
    }
  }
  return {};
}

}  // namespace overhaul::lint
