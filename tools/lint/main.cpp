// overhaul-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/config error.
//
//   overhaul-lint --root src [--root more/src] --rules tools/lint/overhaul_lint.rules
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root <dir|file> [--root ...] --rules <file> "
               "[--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string rules_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg == "--rules" && i + 1 < argc) {
      rules_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (roots.empty() || rules_path.empty()) return usage(argv[0]);

  std::string error;
  const auto config = overhaul::lint::load_rules_file(rules_path, &error);
  if (!config.has_value()) {
    std::fprintf(stderr, "overhaul-lint: %s\n", error.c_str());
    return 2;
  }

  std::size_t files_scanned = 0;
  const auto findings =
      overhaul::lint::run_lint(roots, *config, &files_scanned);
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "overhaul-lint: %zu finding(s) in %zu file(s) scanned\n",
                 findings.size(), files_scanned);
  }
  return findings.empty() ? 0 : 1;
}
