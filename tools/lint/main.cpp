// overhaul-lint CLI.
//
// Exit codes: 0 = clean, 1 = findings (or a missing --explain witness),
// 2 = usage/configuration error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ir.h"
#include "lint.h"
#include "rules_flow.h"
#include "sarif.h"

namespace {

constexpr const char* kVersion = "7.0";

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: overhaul-lint --root DIR [--root DIR ...] --rules FILE\n"
      "                     [--baseline FILE] [--cache FILE] [--sarif OUT]\n"
      "                     [--explain RULE[:FUNCTION]] [--stats] [--quiet]\n"
      "\n"
      "Mediation-completeness analyzer for the Overhaul tree. Scans the\n"
      "roots for C++ sources, builds a whole-tree call graph plus per-\n"
      "function dataflow CFGs, and enforces rules R1-R13 from the rules\n"
      "file.\n"
      "\n"
      "  --baseline FILE  vetted findings (rule file symbol reason); stale\n"
      "                   entries are themselves findings\n"
      "  --cache FILE     incremental IR cache (keyed by source content +\n"
      "                   rules/baseline hash); safe to delete at any time\n"
      "  --sarif OUT      also write findings as SARIF 2.1.0 JSON\n"
      "  --explain SPEC   print witness call chains instead of linting:\n"
      "                   R5 (all seeds), R5:<function>, R6:<function>,\n"
      "                   R9:<function> (nondet-order taint witness),\n"
      "                   R11[:<function>] (clock-domain witness)\n"
      "  --stats          print file/function/edge/cache counters\n"
      "  --quiet          suppress per-finding lines (exit code only)\n");
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace overhaul::lint;

  std::vector<std::string> roots;
  std::string rules_path, baseline_path, cache_path, sarif_path, explain_spec;
  bool quiet = false, stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "overhaul-lint: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return 2;
      roots.push_back(v);
    } else if (arg == "--rules") {
      const char* v = value("--rules");
      if (v == nullptr) return 2;
      rules_path = v;
    } else if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--cache") {
      const char* v = value("--cache");
      if (v == nullptr) return 2;
      cache_path = v;
    } else if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return 2;
      sarif_path = v;
    } else if (arg == "--explain") {
      const char* v = value("--explain");
      if (v == nullptr) return 2;
      explain_spec = v;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "overhaul-lint: unknown argument '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (roots.empty() || rules_path.empty()) {
    usage(stderr);
    return 2;
  }

  std::string rules_text;
  if (!read_file(rules_path, &rules_text)) {
    std::fprintf(stderr, "overhaul-lint: cannot open rules file: %s\n",
                 rules_path.c_str());
    return 2;
  }
  std::string error;
  const auto config = parse_rules(rules_text, &error);
  if (!config.has_value()) {
    std::fprintf(stderr, "overhaul-lint: %s\n", error.c_str());
    return 2;
  }

  TreeOptions opts;
  opts.roots = roots;
  opts.config = *config;
  std::string baseline_text;
  if (!baseline_path.empty()) {
    if (!read_file(baseline_path, &baseline_text)) {
      std::fprintf(stderr, "overhaul-lint: cannot open baseline file: %s\n",
                   baseline_path.c_str());
      return 2;
    }
    const auto baseline = parse_baseline(baseline_text, &error);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "overhaul-lint: %s\n", error.c_str());
      return 2;
    }
    opts.baseline = *baseline;
  }
  // Cache key covers the rules and baseline text plus the tool version (an
  // analyzer change may change what the IR records; a rules or baseline edit
  // must never serve stale verdicts from the cache).
  opts.rules_hash = fnv1a64(std::string(kVersion) + "\n" + rules_text + "\n" +
                            baseline_text);
  opts.cache_path = cache_path;

  const TreeResult result = run_tree(opts);

  if (!explain_spec.empty()) {
    const ExplainOutcome out = explain(result.program, *config, explain_spec);
    std::fputs(out.text.c_str(), stdout);
    return out.exit_code;
  }

  if (!quiet) {
    for (const Finding& f : result.findings)
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
  }
  if (stats) {
    std::printf(
        "overhaul-lint: %zu files (%zu reparsed, %zu evicted, %zu "
        "invalidated_by_config), %zu functions, %zu call edges, %zu findings "
        "(%zu suppressed, %zu baselined)\n",
        result.stats.files, result.stats.reparsed, result.stats.evicted,
        result.stats.invalidated_by_config, result.stats.functions,
        result.stats.call_edges, result.findings.size(),
        result.stats.suppressed, result.stats.baselined);
  } else if (!quiet) {
    std::fprintf(stderr,
                 "overhaul-lint: %zu finding(s) in %zu file(s) scanned\n",
                 result.findings.size(), result.stats.files);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "overhaul-lint: cannot write SARIF to %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << to_sarif(result.findings, kVersion) << "\n";
  }

  return result.findings.empty() ? 0 : 1;
}
