// Per-file intermediate representation for overhaul-lint.
//
// A FileIR is everything the rules need to know about one translation unit,
// decoupled from its raw text: extracted functions (with call sites), class-
// scope pointer fields, R3/R4 token hits, and inline suppressions. FileIRs
// are cheap to serialize, which is what makes the incremental cache work: a
// warm run re-reads sources only to hash them, and re-parses only files whose
// content hash (or the rules-file hash) changed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace overhaul::lint {

// A single token hit the per-file rules care about (R3 guarded-field write,
// R4 banned identifier).
struct TokenHit {
  int line = 0;
  std::string text;
};

// Inline suppression: `// overhaul-lint: allow(R6: reason text)`. Applies to
// findings of `rule` on the same line or the line directly below. Reasons are
// mandatory; an empty reason or unknown rule is itself reported (rule "sup").
struct Suppression {
  int line = 0;
  std::string rule;
  std::string reason;
};

struct FileIR {
  std::string path;
  std::uint64_t source_hash = 0;
  std::vector<FunctionInfo> functions;
  std::vector<PointerField> pointer_fields;
  std::vector<MemberDecl> members;       // R8/R9: class-scope data members
  std::vector<TokenHit> guarded_writes;  // R3: `field <assign-op>` sites
  std::vector<TokenHit> banned_idents;   // R4: banned identifier uses
  std::vector<Suppression> suppressions;
};

// FNV-1a 64-bit content hash (stable across platforms; used for the cache
// keys, never for security).
std::uint64_t fnv1a64(std::string_view data);

// Scans raw source lines for `overhaul-lint: allow(RULE: reason)` markers.
std::vector<Suppression> scan_suppressions(const std::string& source);

// Tokenizes + extracts one file into its IR. `config` supplies the R3 field
// and R4 identifier sets (the only rule inputs baked into the IR — which is
// why the cache key includes the rules-file hash).
FileIR build_file_ir(const std::string& path, const std::string& source,
                     const RuleConfig& config);

// Runs the per-file rules (R1–R4, R7) over one FileIR. No suppression or
// baseline filtering — that is the tree pipeline's job, so it can report
// unused suppressions. Defined in lint.cpp next to the rule logic.
std::vector<Finding> run_file_rules(const FileIR& ir, const RuleConfig& config);

// --- incremental cache -------------------------------------------------------

// Text cache format (tab-separated; names may contain spaces — `operator
// bool` — but never tabs; list-valued fields are comma-joined, '-' when
// empty — identifiers never contain commas):
//   overhaul-lint-cache v4 <config_hash hex>
//   F <source_hash hex> <path>
//   f <line> <ret_is_ptr> <anno> <ret_type|-> <name> <qname>  (function)
//   c <line> <qualifier|-> <name>                          (call site of ^)
//   d <line> <kind> <succ> <defs> <uses> <calls> <decl_type|-> <locks>
//     <unlocks>                                            (flow stmt of ^)
//   p <line> <type> <name>                                 (pointer field)
//   m <line> <mutable> <anno> <klass> <type|-> <name> <guard|->
//                                                          (data member)
//   w <line> <field>                                       (guarded write)
//   b <line> <ident>                                       (banned ident)
//   s <line> <rule> <reason>                               (suppression)
std::string serialize_cache(const std::vector<FileIR>& files,
                            std::uint64_t config_hash);

// Parses a cache blob. Returns false (and leaves `out` empty) on a version or
// config-hash mismatch or any malformed record — a bad cache is discarded
// wholesale, never trusted partially. When `invalidated` is non-null it
// receives the number of cached file entries discarded specifically because
// the config hash changed (rules/baseline edit), 0 otherwise — the
// `invalidated_by_config` stat.
bool parse_cache(const std::string& text, std::uint64_t config_hash,
                 std::vector<FileIR>* out, std::size_t* invalidated = nullptr);

}  // namespace overhaul::lint
