// Whole-tree call graph over the per-file IR.
//
// Nodes are function *definitions*; edges are name-resolved call sites. The
// resolver is deliberately over-approximate (this is a tripwire, not a
// compiler): a call site links to every definition with the same unqualified
// name, narrowed to suffix-matching candidates when the call was written with
// an explicit qualifier (`IpcObject::stamp_on_send(...)`). Handler and
// function-pointer indirection the token stream cannot see (the netlink hub's
// installed std::function callbacks) is declared in the rules file as
// `cg.edge caller callee` and spliced in as synthetic edges.
//
// Over-approximation errs toward *passing* R5 (a bogus edge can only create a
// path, never destroy one) — acceptable for a reachability tripwire whose job
// is to scream when a refactor severs a mediation chain, and exactly why R2
// keeps a small direct-call anchor list for the ordering-sensitive edges.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir.h"

namespace overhaul::lint {

struct ProgramIR {
  std::vector<FileIR> files;
};

class CallGraph {
 public:
  struct Node {
    std::string qname;
    std::string name;
    std::string file;
    int line = 0;
    const FunctionInfo* fn = nullptr;  // borrowed from the ProgramIR
  };

  // Builds nodes from every function in `program` and resolves all call
  // sites, plus the declared `config.cg_edges`. The ProgramIR must outlive
  // the graph.
  static CallGraph build(const ProgramIR& program, const RuleConfig& config);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::vector<int>>& out_edges() const { return edges_; }
  std::size_t edge_count() const { return edge_count_; }

  // All nodes whose qualified name matches `pattern` (exact or "::"-suffix).
  std::vector<int> find_qname(const std::string& pattern) const;

  // The node for `function` defined in a file matching the rules-file path
  // entry `file_entry`; -1 when absent. Prefers an exact unqualified-name
  // match, falls back to a qualified-suffix match.
  int find_in_file(const std::string& file_entry,
                   const std::string& function) const;

  // Forward reachability from `sources` (inclusive).
  std::vector<char> reachable_from(const std::vector<int>& sources) const;

  // Shortest call chain from `start` to any node satisfying `accept`
  // (BFS; `start` itself may satisfy it). Empty when unreachable.
  std::vector<int> shortest_path(int start,
                                 const std::function<bool(int)>& accept) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<int>> edges_;
  std::size_t edge_count_ = 0;
  // Unqualified name -> node ids, in node order. Kept after build so seed
  // resolution (find_in_file, called once per configured seed per run) probes
  // a bucket instead of scanning every node against a path pattern.
  std::unordered_map<std::string, std::vector<int>> by_name_;
};

}  // namespace overhaul::lint
