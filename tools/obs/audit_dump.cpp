// audit_dump: decoder CLI for binary audit snapshots (DESIGN.md §16).
//
// Reads a snapshot produced by audit::write_snapshot_file (header + string
// table + 64-byte records, CRC-checked), validates it, and renders each
// record through util::AuditLog::format — the rendering is byte-identical
// to the text log's, so the cross-backend differential oracle and the
// xshard single-kernel oracle can diff audit_dump output exactly as they
// diff live audit streams.
//
// Usage:
//   audit_dump SNAPSHOT            # one formatted line per record
//   audit_dump --stats SNAPSHOT    # totals only (records, grants, denials,
//                                  # lifetime appended/dropped, strings)
//   audit_dump --deny SNAPSHOT     # only denied decisions
//
// Exit 0 on a valid snapshot; 1 on a corrupt/truncated/unsupported one
// (the validation failure is printed to stderr); 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "audit/snapshot.h"
#include "util/audit_log.h"

namespace {

int usage() {
  std::fprintf(stderr, "usage: audit_dump [--stats] [--deny] SNAPSHOT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool stats_only = false;
  bool deny_only = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats_only = true;
    } else if (std::strcmp(argv[i], "--deny") == 0) {
      deny_only = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();

  overhaul::audit::Reader reader;
  std::string error;
  if (!reader.load_file(path, &error)) {
    std::fprintf(stderr, "audit_dump: %s: %s\n", path, error.c_str());
    return 1;
  }

  using overhaul::util::Decision;
  if (stats_only) {
    std::printf("records   %zu\n", reader.size());
    std::printf("grants    %zu\n", reader.count(Decision::kGrant));
    std::printf("denials   %zu\n", reader.count(Decision::kDeny));
    std::printf("appended  %llu\n",
                static_cast<unsigned long long>(reader.total_appended()));
    std::printf("dropped   %llu\n",
                static_cast<unsigned long long>(reader.dropped()));
    return 0;
  }

  for (const overhaul::audit::BinRecord& rec : reader.records()) {
    if (deny_only &&
        rec.decision != static_cast<std::uint8_t>(Decision::kDeny))
      continue;
    std::printf("%s\n", reader.format(rec).c_str());
  }
  return 0;
}
