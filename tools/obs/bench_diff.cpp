// bench_diff: perf-trajectory gate over the BENCH_*.json reports.
//
// bench_gate reasons about one run's internal honesty (ratio intervals);
// this tool reasons about the *trajectory*: it compares headline metrics
// from the current run against the committed previous values in
// tools/bench_baseline.json and fails when any metric regresses by more
// than the threshold (default 25%). Direction is per metric — throughput
// ("higher" is better: decisions/sec) regresses downward, latency ("lower"
// is better: ns/op) regresses upward. Improvements and small drifts print
// in the delta table but never gate.
//
// Usage:
//   bench_diff --baseline=tools/bench_baseline.json [--threshold=25]
//              BENCH_fleet.json BENCH_hotpath.json...
//   bench_diff --baseline=... --update BENCH_...json...
//
// --update rewrites the baseline's values from the current reports (same
// files/keys/directions) — run it on the reference machine after a change
// that legitimately moves a metric, and commit the result. Quick-shape
// numbers on one box are only comparable to quick-shape numbers on the same
// box; the gate exists to catch order-of-magnitude mistakes (an accidental
// O(n^2), a debug build sneaking in), hence the loose default threshold.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

struct Metric {
  std::string file;       // basename of the report the value lives in
  std::string key;        // flat key inside that report
  std::string direction;  // "higher" or "lower" (which way is better)
  double value = 0;       // baseline value
};

// Same minimal scraping idiom as bench_gate: every document is validated
// with the strict parser first, after which substring scanning is sound for
// the flat objects the benches emit.
bool find_number(const std::string& obj, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(obj.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool find_string(const std::string& obj, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t end = obj.find('"', start);
  if (end == std::string::npos) return false;
  *out = obj.substr(start, end - start);
  return true;
}

std::vector<std::string> extract_objects(const std::string& text,
                                         const std::string& array_key) {
  std::vector<std::string> rows;
  const std::size_t arr = text.find("\"" + array_key + "\":[");
  if (arr == std::string::npos) return rows;
  std::size_t pos = arr;
  while (true) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    rows.push_back(text.substr(open, close - open + 1));
    pos = close + 1;
    if (pos >= text.size() || text[pos] != ',') break;
  }
  return rows;
}

bool read_validated(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  std::string error;
  if (!overhaul::obs::json::validate(*out, &error)) {
    std::fprintf(stderr, "bench_diff: %s: invalid JSON: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// Removes row objects marked "gating":false from a report's "rows" array so
// the flat substring key lookup below can never land on a quick-shape row's
// value. The result is only scraped, never re-validated, but stays valid
// JSON anyway (the array is rebuilt with correct commas).
std::string strip_non_gating_rows(const std::string& text) {
  const std::size_t arr = text.find("\"rows\":[");
  if (arr == std::string::npos) return text;
  const std::size_t open_bracket = arr + 7;  // index of '['
  // Row objects are flat (no nested brackets), so the first ']' after the
  // '[' closes the array.
  const std::size_t close_bracket = text.find(']', open_bracket);
  if (close_bracket == std::string::npos) return text;
  std::vector<std::string> kept;
  std::size_t pos = open_bracket;
  while (true) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos || open > close_bracket) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos || close > close_bracket) break;
    const std::string obj = text.substr(open, close - open + 1);
    if (obj.find("\"gating\":false") == std::string::npos)
      kept.push_back(obj);
    pos = close + 1;
  }
  std::string rebuilt = "[";
  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (i > 0) rebuilt += ",";
    rebuilt += kept[i];
  }
  rebuilt += "]";
  return text.substr(0, open_bracket) + rebuilt +
         text.substr(close_bracket + 1);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string render_baseline(const std::vector<Metric>& metrics) {
  std::string out = "{\"baseline\":\"bench-trajectory\",\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    if (i > 0) out += ",";
    char num[32];
    std::snprintf(num, sizeof(num), "%.6g", m.value);
    out += "{\"file\":\"" + m.file + "\",\"key\":\"" + m.key +
           "\",\"direction\":\"" + m.direction + "\",\"value\":" + num + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 25.0;
  bool update = false;
  std::string baseline_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: bench_diff --baseline=PATH [--threshold=PCT] "
                   "[--update] BENCH_*.json...\n");
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (baseline_path.empty() || files.empty()) {
    std::fprintf(stderr,
                 "bench_diff: need --baseline=PATH and at least one "
                 "BENCH_*.json\n");
    return 2;
  }

  std::string baseline_text;
  if (!read_validated(baseline_path, &baseline_text)) return 1;
  std::vector<Metric> metrics;
  for (const std::string& obj : extract_objects(baseline_text, "metrics")) {
    Metric m;
    if (!find_string(obj, "file", &m.file) ||
        !find_string(obj, "key", &m.key) ||
        !find_string(obj, "direction", &m.direction) ||
        !find_number(obj, "value", &m.value)) {
      std::fprintf(stderr, "bench_diff: malformed baseline row: %s\n",
                   obj.c_str());
      return 1;
    }
    if (m.direction != "higher" && m.direction != "lower") {
      std::fprintf(stderr,
                   "bench_diff: %s/%s: direction must be higher or lower\n",
                   m.file.c_str(), m.key.c_str());
      return 1;
    }
    metrics.push_back(std::move(m));
  }
  if (metrics.empty()) {
    std::fprintf(stderr, "bench_diff: baseline has no metrics array\n");
    return 1;
  }

  // Load every provided report once, keyed by basename.
  std::map<std::string, std::string> reports;
  for (const std::string& path : files) {
    std::string text;
    if (!read_validated(path, &text)) return 1;
    reports[basename_of(path)] = strip_non_gating_rows(text);
  }

  std::printf("bench trajectory vs %s (gate: >%.0f%% regression fails)\n",
              baseline_path.c_str(), threshold);
  std::printf("  %-18s %-26s %12s %12s %8s  %s\n", "file", "metric",
              "previous", "current", "delta", "verdict");
  int rc = 0;
  for (Metric& m : metrics) {
    const auto it = reports.find(m.file);
    if (it == reports.end()) {
      std::fprintf(stderr, "bench_diff: baseline expects %s but it was not "
                   "provided\n", m.file.c_str());
      rc = 1;
      continue;
    }
    double current = 0;
    if (!find_number(it->second, m.key, &current)) {
      std::fprintf(stderr, "bench_diff: %s has no key \"%s\"\n",
                   m.file.c_str(), m.key.c_str());
      rc = 1;
      continue;
    }
    const double delta_pct =
        m.value == 0 ? 0 : (current - m.value) / m.value * 100.0;
    const bool regressed = m.direction == "higher" ? delta_pct < -threshold
                                                   : delta_pct > threshold;
    const bool improved = m.direction == "higher" ? delta_pct > threshold
                                                  : delta_pct < -threshold;
    const char* verdict = update      ? "updated"
                          : regressed ? "REGRESSION"
                          : improved  ? "improved"
                                      : "ok";
    std::printf("  %-18s %-26s %12.6g %12.6g %+7.1f%%  %s\n", m.file.c_str(),
                m.key.c_str(), m.value, current, delta_pct, verdict);
    if (regressed && !update) rc = 1;
    if (update) m.value = current;
  }

  if (update && rc == 0) {
    std::ofstream out(baseline_path, std::ios::binary);
    const std::string body = render_baseline(metrics);
    if (!out || !out.write(body.data(),
                           static_cast<std::streamsize>(body.size()))) {
      std::fprintf(stderr, "bench_diff: cannot rewrite %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::printf("rewrote %s\n", baseline_path.c_str());
  }
  return rc;
}
