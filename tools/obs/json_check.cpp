// json_check: strict validation of the JSON this repo emits by construction
// (BENCH_*.json reports, /proc/overhaul metrics snapshots, Chrome trace
// exports). The emitters have no JSON library to lean on, so CI closes the
// loop from the consumer side: every emitted document must survive the
// validator in src/obs/json.h. Exit 0 iff every file parses.
//
// Usage: json_check FILE...
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check FILE...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::string error;
    if (!overhaul::obs::json::validate(text, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      rc = 1;
    } else {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], text.size());
    }
  }
  return rc;
}
