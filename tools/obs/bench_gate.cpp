// bench_gate: CI gate over BENCH_table1.json that reasons about the ratio
// *interval*, not the point estimate.
//
// bench_table1 emits, per row, the per-repetition overhead-ratio spread
// (ratio_min / ratio_median / ratio_max, n repetitions). A single median is
// a coin flip on a noisy box; the interval is what supports a verdict:
//   - ratio_min > 1        → the whole spread sits above parity: a measured
//                            overhead. Gate: ratio_min must stay <= the
//                            threshold (default 1.25).
//   - ratio_max < 1        → a measured improvement; never gated.
//   - interval straddles 1 → a noise-floor reading. Reported as "noise",
//                            never gated (the paper's expected shape — its
//                            overheads are low single digits on hardware,
//                            below this substrate's noise floor).
// Rows with n < --min-reps fail outright: an interval from one repetition
// is degenerate and proves nothing.
//
// Usage: bench_gate [--threshold=X] [--min-reps=N] BENCH_table1.json...
// Exit 0 iff every file validates, has >= min-reps per row, and no row's
// whole interval exceeds the threshold.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

struct Row {
  std::string name;
  double n = 0;
  double ratio_min = 0;
  double ratio_median = 0;
  double ratio_max = 0;
  // Optional fields (rows from older trajectory files may lack them): the
  // sample variance of the surviving ratios and how many repetitions the
  // MAD rejection dropped before the interval was computed.
  bool has_spread = false;
  double variance = 0;
  double rejected = 0;
};

// Minimal field scraper for the flat row objects bench_table1 emits. The
// document is validated with the strict parser first, so after that simple
// string scanning inside each row object is sound.
bool find_number(const std::string& obj, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(obj.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool find_string(const std::string& obj, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t end = obj.find('"', start);
  if (end == std::string::npos) return false;
  *out = obj.substr(start, end - start);
  return true;
}

// Split the "rows":[{...},{...}] array into per-row object strings. Row
// objects are flat (no nested objects), so matching braces need no stack.
std::vector<std::string> extract_rows(const std::string& text) {
  std::vector<std::string> rows;
  const std::size_t arr = text.find("\"rows\":[");
  if (arr == std::string::npos) return rows;
  std::size_t pos = arr;
  while (true) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    rows.push_back(text.substr(open, close - open + 1));
    pos = close + 1;
    if (pos >= text.size() || text[pos] != ',') break;  // end of the array
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 1.25;
  double min_reps = 5;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strncmp(argv[i], "--min-reps=", 11) == 0) {
      min_reps = std::strtod(argv[i] + 11, nullptr);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: bench_gate [--threshold=X] [--min-reps=N] "
                   "BENCH_table1.json...\n");
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "bench_gate: no input files\n");
    return 2;
  }

  int rc = 0;
  for (const char* path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::string error;
    if (!overhaul::obs::json::validate(text, &error)) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", path, error.c_str());
      rc = 1;
      continue;
    }
    const std::vector<std::string> row_objs = extract_rows(text);
    if (row_objs.empty()) {
      std::fprintf(stderr, "%s: no \"rows\" array — not a table1 report?\n",
                   path);
      rc = 1;
      continue;
    }
    std::printf("%s: %zu rows (gate: whole interval > %.2f fails, "
                "n >= %.0f required)\n",
                path, row_objs.size(), threshold, min_reps);
    int noise_rows = 0;
    for (const std::string& obj : row_objs) {
      // --quick rows carry "gating":false — single-repetition smoke numbers
      // with no spread to reason about. Report them, never gate on them.
      if (obj.find("\"gating\":false") != std::string::npos) {
        std::string name;
        (void)find_string(obj, "name", &name);
        std::printf("  %-18s skipped (marked non-gating: quick-shape row)\n",
                    name.c_str());
        continue;
      }
      Row row;
      if (!find_string(obj, "name", &row.name) ||
          !find_number(obj, "n", &row.n) ||
          !find_number(obj, "ratio_min", &row.ratio_min) ||
          !find_number(obj, "ratio_median", &row.ratio_median) ||
          !find_number(obj, "ratio_max", &row.ratio_max)) {
        std::fprintf(stderr, "%s: row missing honesty fields: %s\n", path,
                     obj.c_str());
        rc = 1;
        continue;
      }
      row.has_spread = find_number(obj, "variance", &row.variance) &&
                       find_number(obj, "rejected_outliers", &row.rejected);
      const char* verdict;
      bool fail = false;
      bool noisy = false;
      if (row.n < min_reps) {
        verdict = "FAIL (too few repetitions)";
        fail = true;
      } else if (row.ratio_min > 1.0) {
        // The whole interval sits above parity: real overhead. Gate it.
        fail = row.ratio_min > threshold;
        verdict = fail ? "FAIL (overhead above threshold)" : "overhead";
      } else if (row.ratio_max < 1.0) {
        verdict = "improvement";
      } else {
        verdict = "noise (interval straddles 1.0)";
        noisy = true;
      }
      std::printf("  %-18s n=%-3.0f ratio [%.4f, %.4f] median %.4f",
                  row.name.c_str(), row.n, row.ratio_min, row.ratio_max,
                  row.ratio_median);
      if (row.has_spread)
        std::printf(" var %.2e rej %.0f", row.variance, row.rejected);
      std::printf(" — %s\n", verdict);
      if (fail) rc = 1;
      if (noisy) ++noise_rows;
    }
    if (noise_rows > 0)
      std::printf("%s: flagged %d noise row(s) (interval straddles 1.0) — "
                  "reported, not gated\n",
                  path, noise_rows);
  }
  return rc;
}
